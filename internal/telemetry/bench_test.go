package telemetry

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: ccperf
BenchmarkSpaceEnumeration
BenchmarkSpaceEnumeration-8   	      10	 123456789 ns/op	 2048 B/op	      12 allocs/op
BenchmarkAlgorithm1VsExhaustive/greedy-8         	     100	   1234567 ns/op	        86.0 model-evals
==== fig9 — some experiment printout that must be ignored
  feasible configurations          paper: 7654    measured: 7654
BenchmarkAblationBatchSize/batch=300-8           	     500	    234567 ns/op	      3760 sim-seconds-50k
PASS
ok  	ccperf	12.345s
`

func TestParseBench(t *testing.T) {
	results, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3: %+v", len(results), results)
	}
	r0 := results[0]
	if r0.Name != "BenchmarkSpaceEnumeration" || r0.Iterations != 10 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.Values["ns/op"] != 123456789 || r0.Values["B/op"] != 2048 || r0.Values["allocs/op"] != 12 {
		t.Fatalf("r0 values = %+v", r0.Values)
	}
	r1 := results[1]
	if r1.Name != "BenchmarkAlgorithm1VsExhaustive/greedy" {
		t.Fatalf("sub-benchmark name = %q", r1.Name)
	}
	if r1.Values["model-evals"] != 86 {
		t.Fatalf("custom metric = %v", r1.Values["model-evals"])
	}
	r2 := results[2]
	if r2.Name != "BenchmarkAblationBatchSize/batch=300" || r2.Values["sim-seconds-50k"] != 3760 {
		t.Fatalf("r2 = %+v", r2)
	}
}

func TestParseBenchBadValue(t *testing.T) {
	_, err := ParseBench(strings.NewReader("BenchmarkX-8 10 oops ns/op\n"))
	if err == nil {
		t.Fatal("expected error for malformed value")
	}
}

// TestParseBenchNameEdges pins the name handling: deep sub-benchmark paths
// keep their slashes, the -GOMAXPROCS suffix is stripped exactly once, and
// names whose final dash segment is not a number stay intact.
func TestParseBenchNameEdges(t *testing.T) {
	in := strings.Join([]string{
		"BenchmarkDeep/a=1/b=2-16 4 99 ns/op",
		"BenchmarkNoProcSuffix 7 11 ns/op",              // no -GOMAXPROCS at all
		"BenchmarkTrailing/size-large-8 3 5 ns/op",      // only the numeric tail goes
		"BenchmarkDashNum/words-not-32x-bits 2 1 ns/op", // "bits" is not a proc count
	}, "\n")
	results, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"BenchmarkDeep/a=1/b=2",
		"BenchmarkNoProcSuffix",
		"BenchmarkTrailing/size-large",
		"BenchmarkDashNum/words-not-32x-bits",
	}
	if len(results) != len(want) {
		t.Fatalf("results = %d, want %d: %+v", len(results), len(want), results)
	}
	for i, w := range want {
		if results[i].Name != w {
			t.Errorf("name[%d] = %q, want %q", i, results[i].Name, w)
		}
	}
}

// TestParseBenchOddFields covers lines that start like results but are not:
// the bare pre-run name line, an odd field count (value without unit), and
// a non-numeric iteration count. All must be skipped, not errors.
func TestParseBenchOddFields(t *testing.T) {
	in := strings.Join([]string{
		"BenchmarkBare",                        // pre-run announcement line
		"BenchmarkOdd-8 10 123 ns/op trailing", // odd field count
		"BenchmarkNotIter-8 fast 1 ns/op",      // iterations not a number
		"BenchmarkReal-8 10 123 ns/op",
	}, "\n")
	results, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkReal" {
		t.Fatalf("results = %+v, want only BenchmarkReal", results)
	}
}

// TestParseBenchHugeLine exercises the scanner's 1MB buffer cap: a valid
// result line just under the cap parses, and a line over it is an error
// (bufio.ErrTooLong) rather than silent truncation.
func TestParseBenchHugeLine(t *testing.T) {
	line := func(pad int) string {
		return "BenchmarkHuge/pad=" + strings.Repeat("x", pad) + "-8 10 123 ns/op\n"
	}
	under := line(1<<20 - 64)
	results, err := ParseBench(strings.NewReader(under))
	if err != nil {
		t.Fatalf("line under the buffer cap: %v", err)
	}
	if len(results) != 1 || !strings.HasPrefix(results[0].Name, "BenchmarkHuge/pad=") {
		t.Fatalf("under-cap results = %d", len(results))
	}
	if _, err := ParseBench(strings.NewReader(line(1 << 20))); err == nil {
		t.Fatal("expected an error for a line over the 1MB scanner cap")
	}
}

// TestParseBenchNonNumericUnitValues: a line that is shaped like a result
// (even fields, numeric iterations) but has a non-numeric value must error
// loudly — silently dropping it would fake a missing benchmark.
func TestParseBenchNonNumericUnitValues(t *testing.T) {
	for _, in := range []string{
		"BenchmarkX-8 10 12.5.7 ns/op",         // malformed float
		"BenchmarkX-8 10 1e999x B/op",          // trailing junk
		"BenchmarkX-8 10 5 ns/op NaN-ish b/op", // second pair bad
	} {
		if _, err := ParseBench(strings.NewReader(in + "\n")); err == nil {
			t.Errorf("ParseBench(%q): expected error", in)
		}
	}
}

func TestCollectBench(t *testing.T) {
	in := strings.Join([]string{
		"BenchmarkB-8 10 200 ns/op 5 allocs/op",
		"BenchmarkA-8 3 100 ns/op",
		"BenchmarkA-8 4 110 ns/op",
		"BenchmarkA-8 5 90 ns/op",
	}, "\n")
	results, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	series := CollectBench(results)
	if len(series) != 2 || series[0].Name != "BenchmarkA" || series[1].Name != "BenchmarkB" {
		t.Fatalf("series = %+v, want sorted [BenchmarkA BenchmarkB]", series)
	}
	a := series[0]
	if got := a.Values["ns/op"]; len(got) != 3 || got[0] != 100 || got[1] != 110 || got[2] != 90 {
		t.Fatalf("-count samples lost: %v", got)
	}
	if len(a.Iterations) != 3 || a.Iterations[1] != 4 {
		t.Fatalf("iterations = %v", a.Iterations)
	}
	set := BenchSet{Benchmarks: series}
	if s := set.Series("BenchmarkB"); s == nil || s.Values["allocs/op"][0] != 5 {
		t.Fatalf("Series lookup failed: %+v", s)
	}
	if set.Series("BenchmarkC") != nil {
		t.Fatal("Series on a missing name must return nil")
	}
}

func TestBenchSnapshot(t *testing.T) {
	results, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	s := BenchSnapshot(results)
	if s.Counters["bench.BenchmarkSpaceEnumeration.iterations"] != 10 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if s.Gauges["bench.BenchmarkSpaceEnumeration.ns_per_op"] != 123456789 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if s.Gauges["bench.BenchmarkAlgorithm1VsExhaustive/greedy.model-evals"] != 86 {
		t.Fatalf("custom gauge missing: %+v", s.Gauges)
	}
	if s.UnixNano == 0 {
		t.Fatal("snapshot must be timestamped")
	}
}
