package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one parsed `go test -bench` result line.
type BenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkSpaceEnumeration" or "BenchmarkAlgorithm1VsExhaustive/greedy".
	Name string
	// Iterations is b.N for the reported run.
	Iterations int64
	// Values maps unit → value, e.g. "ns/op" → 123456, "model-evals" → 42.
	Values map[string]float64
}

// ParseBench extracts benchmark result lines from `go test -bench` output,
// tolerating interleaved experiment printouts, goos/pkg headers and PASS
// trailers. Lines that do not look like results are skipped silently; a
// line that starts like a result but fails to parse is an error.
func ParseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "BenchmarkName-P N value unit [value unit]...".
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // e.g. the bare "BenchmarkFoo" line printed before a run
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not an iteration count ⇒ not a result line
		}
		res := BenchResult{
			Name:       trimProcSuffix(fields[0]),
			Iterations: n,
			Values:     make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: bad bench value %q in %q: %v", fields[i], line, err)
			}
			res.Values[fields[i+1]] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// trimProcSuffix drops the trailing -GOMAXPROCS from a benchmark name,
// keeping sub-benchmark paths intact ("BenchmarkX/sub=1-8" → "BenchmarkX/sub=1").
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// BenchMeta records how a bench set was produced, so trajectory points can
// be compared knowingly: a delta between runs at different -benchtime, or
// on different machines, means something different from a same-rig rerun.
type BenchMeta struct {
	// GitSHA is the commit the benchmarks ran at (short form).
	GitSHA string `json:"git_sha,omitempty"`
	// Benchtime is the -benchtime the runs used (e.g. "1x", "100ms").
	Benchtime string `json:"benchtime,omitempty"`
	// Count is the -count repetitions per benchmark (variance source).
	Count int `json:"count,omitempty"`
	// Note is free-form provenance (machine class, "ci", "local", ...).
	Note string `json:"note,omitempty"`
}

// String renders the provenance compactly, e.g.
// "09d4856 (-benchtime 1x -count 3)"; empty meta renders as "unknown".
func (m BenchMeta) String() string {
	sha := m.GitSHA
	if sha == "" {
		sha = "unknown"
	}
	var opts []string
	if m.Benchtime != "" {
		opts = append(opts, "-benchtime "+m.Benchtime)
	}
	if m.Count > 0 {
		opts = append(opts, fmt.Sprintf("-count %d", m.Count))
	}
	if m.Note != "" {
		opts = append(opts, m.Note)
	}
	if len(opts) == 0 {
		return sha
	}
	return sha + " (" + strings.Join(opts, " ") + ")"
}

// BenchSeries is every run of one benchmark across -count repetitions —
// the sample-preserving form BenchSnapshot's last-write-wins maps cannot
// express, and the input variance-aware diffing needs.
type BenchSeries struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N per run, in input order.
	Iterations []int64 `json:"iterations"`
	// Values maps unit → one value per run, e.g. "ns/op" → [1200, 1180].
	// Runs that omitted a unit contribute nothing to that unit's slice, so
	// slices may be shorter than Iterations.
	Values map[string][]float64 `json:"values"`
}

// BenchSet is the ccperf/v1 "bench" payload: one snapshot of the repo's
// benchmarks with per-run samples and provenance. Committed BENCH_<n>.json
// trajectory points and `ccperf benchdiff` inputs are BenchSets.
type BenchSet struct {
	// UnixNano is the capture time.
	UnixNano int64 `json:"unix_nano"`
	// Meta is the run's provenance.
	Meta BenchMeta `json:"meta"`
	// Benchmarks holds one series per benchmark name, sorted by name.
	Benchmarks []BenchSeries `json:"benchmarks"`
}

// CollectBench groups parsed result lines into per-benchmark series,
// preserving every -count repetition as a separate sample. Output is
// sorted by benchmark name.
func CollectBench(results []BenchResult) []BenchSeries {
	byName := make(map[string]*BenchSeries)
	order := make([]string, 0, len(byName))
	for _, r := range results {
		s, ok := byName[r.Name]
		if !ok {
			s = &BenchSeries{Name: r.Name, Values: make(map[string][]float64)}
			byName[r.Name] = s
			order = append(order, r.Name)
		}
		s.Iterations = append(s.Iterations, r.Iterations)
		for unit, v := range r.Values {
			s.Values[unit] = append(s.Values[unit], v)
		}
	}
	sort.Strings(order)
	out := make([]BenchSeries, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// Series returns the named series, or nil.
func (s *BenchSet) Series(name string) *BenchSeries {
	i := sort.Search(len(s.Benchmarks), func(i int) bool { return s.Benchmarks[i].Name >= name })
	if i < len(s.Benchmarks) && s.Benchmarks[i].Name == name {
		return &s.Benchmarks[i]
	}
	return nil
}

// BenchSnapshot converts parsed benchmark results into the telemetry
// Snapshot schema: each (benchmark, unit) pair becomes a gauge named
// "bench.<Name>.<unit>" and each benchmark's iteration count a counter
// "bench.<Name>.iterations". Writing these with Registry-compatible JSON
// means perf trajectories across PRs diff with the same tooling as
// `-metrics-out` artifacts.
func BenchSnapshot(results []BenchResult) Snapshot {
	s := Snapshot{
		UnixNano: now(),
		Counters: make(map[string]int64),
		Gauges:   make(map[string]float64),
	}
	for _, r := range results {
		s.Counters["bench."+r.Name+".iterations"] = r.Iterations
		for unit, v := range r.Values {
			s.Gauges["bench."+r.Name+"."+sanitizeUnit(unit)] = v
		}
	}
	return s
}

// sanitizeUnit makes a bench unit safe as a metric-name segment.
func sanitizeUnit(u string) string {
	return strings.NewReplacer("/", "_per_", " ", "_").Replace(u)
}
