package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BenchResult is one parsed `go test -bench` result line.
type BenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkSpaceEnumeration" or "BenchmarkAlgorithm1VsExhaustive/greedy".
	Name string
	// Iterations is b.N for the reported run.
	Iterations int64
	// Values maps unit → value, e.g. "ns/op" → 123456, "model-evals" → 42.
	Values map[string]float64
}

// ParseBench extracts benchmark result lines from `go test -bench` output,
// tolerating interleaved experiment printouts, goos/pkg headers and PASS
// trailers. Lines that do not look like results are skipped silently; a
// line that starts like a result but fails to parse is an error.
func ParseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "BenchmarkName-P N value unit [value unit]...".
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // e.g. the bare "BenchmarkFoo" line printed before a run
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not an iteration count ⇒ not a result line
		}
		res := BenchResult{
			Name:       trimProcSuffix(fields[0]),
			Iterations: n,
			Values:     make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: bad bench value %q in %q: %v", fields[i], line, err)
			}
			res.Values[fields[i+1]] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// trimProcSuffix drops the trailing -GOMAXPROCS from a benchmark name,
// keeping sub-benchmark paths intact ("BenchmarkX/sub=1-8" → "BenchmarkX/sub=1").
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// BenchSnapshot converts parsed benchmark results into the telemetry
// Snapshot schema: each (benchmark, unit) pair becomes a gauge named
// "bench.<Name>.<unit>" and each benchmark's iteration count a counter
// "bench.<Name>.iterations". Writing these with Registry-compatible JSON
// means perf trajectories across PRs diff with the same tooling as
// `-metrics-out` artifacts.
func BenchSnapshot(results []BenchResult) Snapshot {
	s := Snapshot{
		UnixNano: now(),
		Counters: make(map[string]int64),
		Gauges:   make(map[string]float64),
	}
	for _, r := range results {
		s.Counters["bench."+r.Name+".iterations"] = r.Iterations
		for unit, v := range r.Values {
			s.Gauges["bench."+r.Name+"."+sanitizeUnit(unit)] = v
		}
	}
	return s
}

// sanitizeUnit makes a bench unit safe as a metric-name segment.
func sanitizeUnit(u string) string {
	return strings.NewReplacer("/", "_per_", " ", "_").Replace(u)
}
