package telemetry

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
)

var expvarOnce sync.Once

// Handler returns the debug surface for a registry + tracer pair:
//
//	/            index of routes
//	/metrics     text rendering (add ?format=json for the Snapshot JSON)
//	/trace       TraceDump JSON (add ?format=chrome for trace_event format)
//	/debug/vars  expvar (includes the registry snapshot under "ccperf")
//	/debug/pprof/...  the standard pprof handlers
//
// Passing nil for reg or tr uses the package defaults.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	if reg == nil {
		reg = Default
	}
	if tr == nil {
		tr = DefaultTracer
	}
	// expvar.Publish panics on duplicate names; the Default registry is
	// published once per process regardless of how many handlers exist.
	if reg == Default {
		expvarOnce.Do(func() {
			expvar.Publish("ccperf", expvar.Func(func() any { return Default.Snapshot() }))
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, `ccperf telemetry

  /metrics                 counters, gauges, histogram summaries (text)
  /metrics?format=json     the same as a JSON snapshot
  /trace                   recent spans (JSON)
  /trace?format=chrome     Chrome trace_event format (chrome://tracing)
  /debug/vars              expvar
  /debug/pprof/            CPU, heap, goroutine, ... profiles
`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var err error
		if r.URL.Query().Get("format") == "chrome" {
			err = tr.WriteChromeTrace(w)
		} else {
			err = tr.WriteJSON(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve blocks serving the debug surface on addr.
func Serve(addr string, reg *Registry, tr *Tracer) error {
	return http.ListenAndServe(addr, Handler(reg, tr))
}
