// Package telemetry is the observability layer of the reproduction: a
// stdlib-only metrics registry (counters, gauges, fixed-bucket histograms
// with p50/p90/p99 summaries), lightweight tracing spans collected into a
// bounded in-memory ring, and an HTTP debug surface that wires expvar,
// net/http/pprof and JSON views of both.
//
// The paper's contribution is measurement-driven characterization
// (Section 3.3); this package turns the same discipline inward, onto the
// reproduction's own hot paths. internal/explore, internal/gpusim,
// internal/measure and internal/cluster record into the package-level
// Default registry and tracer, and cmd/ccperf exposes or dumps them
// (`ccperf serve`, `-metrics-out`, `-trace-out`).
//
// Everything is concurrency-safe by construction: counters and gauges are
// single atomics, histograms are atomic bucket arrays, and the span ring
// takes a short mutex only when a span finishes. Recording on a hot path
// costs a handful of atomic operations — cheap enough for the ~30k
// analytical-model evaluations of a Figure 9/10 enumeration.
package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// Default is the process-wide registry the instrumented packages record
// into. Tests that need isolation construct their own Registry.
var Default = NewRegistry()

// DefaultTracer is the process-wide span ring. Its capacity bounds memory:
// older spans are overwritten once the ring is full.
var DefaultTracer = NewTracer(DefaultTraceCapacity)

// DefaultTraceCapacity is the span ring size of DefaultTracer.
const DefaultTraceCapacity = 4096

// Reset clears the Default registry and tracer. CLI subcommands call it
// before a run so `-metrics-out` artifacts describe exactly one run.
func Reset() {
	Default.Reset()
	DefaultTracer.Reset()
}

// Snapshot captures one registry's state for export. It is the JSON
// artifact format of `-metrics-out` and `/metrics?format=json`, and the
// target format bench imports are converted into — one schema for every
// perf artifact so runs can be diffed with generic tooling.
type Snapshot struct {
	// UnixNano is the capture time.
	UnixNano int64 `json:"unix_nano"`
	// Counters are monotonic event counts.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges are last-written values.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms are distribution summaries keyed by metric name.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one histogram bucket: observations ≤ UpperBound that fell
// above the previous bound. The overflow bucket has UpperBound +Inf,
// marshalled as the string "+Inf" (JSON has no Inf literal).
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// WriteSnapshotJSON writes a snapshot as indented JSON — the shared
// serializer for Registry.WriteJSON and standalone snapshots such as
// bench imports.
func WriteSnapshotJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func now() int64 { return time.Now().UnixNano() }
