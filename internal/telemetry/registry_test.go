package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("Counter must memoize by name")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(0.5)
	if g.Value() != 3 {
		t.Fatalf("gauge = %v, want 3", g.Value())
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run with -race this is the concurrency-safety proof, and the
// totals prove no update is lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("events")
			g := r.Gauge("acc")
			h := r.Histogram("dist", LinearBuckets(0, 10, 100))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 1000))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("events").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("acc").Value(); got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
	if got := r.Histogram("dist", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestHistogramPercentiles checks the interpolated quantiles against a
// known distribution: the integers 1..10000 shuffled. Exact percentiles
// are 5000/9000/9900; bucket width 100 bounds the estimation error.
func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(0, 100, 101))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		h.Observe(v)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 5000}, {0.90, 9000}, {0.99, 9900},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 100 {
			t.Fatalf("q%.0f = %v, want %v ± 100", tc.q*100, got, tc.want)
		}
	}
	s := h.Snapshot()
	if s.Min != 1 || s.Max != 10000 || s.Count != 10000 {
		t.Fatalf("snapshot min/max/count = %v/%v/%d", s.Min, s.Max, s.Count)
	}
	if math.Abs(s.Mean-5000.5) > 1e-6 {
		t.Fatalf("mean = %v, want 5000.5", s.Mean)
	}
	if s.P50 != h.Quantile(0.5) || s.P90 != h.Quantile(0.9) || s.P99 != h.Quantile(0.99) {
		t.Fatal("snapshot percentiles disagree with Quantile")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if h.Count() != 0 {
		t.Fatal("non-finite observations must be dropped")
	}
	h.Observe(5) // overflow bucket
	h.Observe(5)
	if got := h.Quantile(0.99); got != 5 {
		t.Fatalf("overflow quantile = %v, want observed max 5", got)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 1 || !math.IsInf(s.Buckets[0].UpperBound, 1) || s.Buckets[0].Count != 2 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram(LinearBuckets(0, 1, 10))
	h.Observe(3.5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); math.Abs(got-3.5) > 0.5 {
			t.Fatalf("single-value quantile(%v) = %v, want ≈3.5", q, got)
		}
	}
}

func TestBadBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds must panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestSnapshotJSONRoundTrip marshals a populated snapshot (including the
// +Inf overflow bucket) and unmarshals it back unchanged.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(1.25)
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 500} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	orig := r.Snapshot()
	if back.Counters["a"] != orig.Counters["a"] || back.Gauges["b"] != orig.Gauges["b"] {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, orig)
	}
	oh, bh := orig.Histograms["h"], back.Histograms["h"]
	if bh.Count != oh.Count || bh.Sum != oh.Sum || bh.P50 != oh.P50 || bh.P90 != oh.P90 || bh.P99 != oh.P99 {
		t.Fatalf("histogram round-trip mismatch: %+v vs %+v", bh, oh)
	}
	if len(bh.Buckets) != len(oh.Buckets) {
		t.Fatalf("bucket count mismatch: %d vs %d", len(bh.Buckets), len(oh.Buckets))
	}
	for i := range bh.Buckets {
		ob, bb := oh.Buckets[i], bh.Buckets[i]
		same := ob.Count == bb.Count &&
			(ob.UpperBound == bb.UpperBound || (math.IsInf(ob.UpperBound, 1) && math.IsInf(bb.UpperBound, 1)))
		if !same {
			t.Fatalf("bucket %d mismatch: %+v vs %+v", i, bb, ob)
		}
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Inc()
	r.Gauge("a.gauge").Set(2)
	r.Histogram("m.hist", []float64{1, 2, 4}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter z.count 1", "gauge a.gauge 2", "histogram m.hist count=1", "p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Reset()
	if r.Counter("c").Value() != 0 {
		t.Fatal("reset must clear counters")
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	if lin[0] != 10 || lin[2] != 20 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	// The default duration buckets must be valid histogram bounds.
	NewHistogram(nil)
}
