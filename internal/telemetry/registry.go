package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. Lookup is a read-locked map hit; metric updates after
// lookup are lock-free, so instrumented code should hold on to the metric
// rather than re-resolve it per event when convenient (re-resolving is
// still safe and cheap).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls may pass nil buckets). Bounds
// must be strictly increasing; an implicit +Inf overflow bucket is always
// appended. Nil or empty buckets on first use fall back to DurationBuckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(buckets)
	r.histograms[name] = h
	return h
}

// Reset removes every metric.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{UnixNano: now()}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes a plain-text rendering, one metric per line, sorted by
// name — the `/metrics` default, meant for curl and grep.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%g min=%g max=%g mean=%g p50=%g p90=%g p99=%g\n",
			name, h.Count, h.Sum, h.Min, h.Max, h.Mean, h.P50, h.P90, h.P99); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-written float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with lock-free observation.
// Percentiles are estimated by linear interpolation inside the bucket that
// contains the requested rank, so their error is bounded by bucket width.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    floatAdder
	min    floatMin
	max    floatMax
}

// DurationBuckets covers wall-clock and simulated durations in seconds,
// 1 µs to ~9 h in ×2 steps — the default when a histogram is created with
// nil bounds.
var DurationBuckets = ExpBuckets(1e-6, 2, 35)

// ExpBuckets returns n exponentially spaced upper bounds starting at start
// and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// NewHistogram builds a histogram with the given upper bounds (nil/empty ⇒
// DurationBuckets). Bounds must be strictly increasing.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one value. Non-finite observations are dropped — a NaN
// or ±Inf would poison the sum and break JSON export (JSON has no Inf).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.observe(v)
	h.max.observe(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (q in [0,1]) by interpolating within
// the owning bucket. Returns 0 with no observations. The overflow bucket
// reports the observed maximum; the first bucket interpolates from the
// observed minimum.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) {
				return h.max.load()
			}
			lo := h.min.load()
			if i > 0 && h.bounds[i-1] > lo {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if mx := h.max.load(); mx < hi {
				hi = mx
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.max.load()
}

// Snapshot captures the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.load(),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.load()
	s.Max = h.max.load()
	s.Mean = s.Sum / float64(s.Count)
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	s.Buckets = make([]BucketCount, 0, len(h.counts))
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue // sparse export: most buckets are empty
		}
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: ub, Count: n})
	}
	return s
}

// MarshalJSON encodes the +Inf overflow bound as the string "+Inf".
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(raw.LE, 64)
		if err != nil {
			return fmt.Errorf("telemetry: bad bucket bound %q: %v", raw.LE, err)
		}
		b.UpperBound = v
	}
	b.Count = raw.Count
	return nil
}

// floatAdder is an atomic float64 accumulator.
type floatAdder struct{ bits atomic.Uint64 }

func (f *floatAdder) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *floatAdder) load() float64 { return math.Float64frombits(f.bits.Load()) }

// floatMin tracks an atomic running minimum.
type floatMin struct{ bits atomic.Uint64 }

func (f *floatMin) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *floatMin) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *floatMin) observe(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// floatMax tracks an atomic running maximum.
type floatMax struct{ bits atomic.Uint64 }

func (f *floatMax) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *floatMax) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *floatMax) observe(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
