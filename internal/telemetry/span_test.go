package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestSpanBasics(t *testing.T) {
	tr := NewTracer(16)
	ctx, finish := tr.StartSpan(context.Background(), "root")
	_, childFinish := tr.StartSpan(ctx, "child")
	childFinish(L("k", "v"), L("n", 42), L("f", 2.5))
	finish()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	var root, child SpanRecord
	for _, s := range spans {
		switch s.Name {
		case "root":
			root = s
		case "child":
			child = s
		}
	}
	if child.Parent != root.ID {
		t.Fatalf("child parent = %d, want %d", child.Parent, root.ID)
	}
	if root.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", root.Parent)
	}
	if child.DurationNanos < 0 {
		t.Fatal("negative duration")
	}
	if len(child.Labels) != 3 || child.Labels[0] != (Label{"k", "v"}) ||
		child.Labels[1] != (Label{"n", "42"}) || child.Labels[2] != (Label{"f", "2.5"}) {
		t.Fatalf("labels = %+v", child.Labels)
	}
}

func TestSpanNilContext(t *testing.T) {
	tr := NewTracer(4)
	_, finish := tr.StartSpan(nil, "s") //nolint:staticcheck // nil ctx is part of the contract
	finish()
	if tr.Len() != 1 {
		t.Fatal("span not recorded")
	}
}

// TestRingWraparound finishes more spans than the ring holds and checks
// that exactly the most recent `capacity` survive and the drop count is
// reported.
func TestRingWraparound(t *testing.T) {
	const capacity, n = 8, 30
	tr := NewTracer(capacity)
	for i := 0; i < n; i++ {
		_, finish := tr.StartSpan(context.Background(), fmt.Sprintf("s%02d", i))
		finish()
	}
	if tr.Len() != capacity {
		t.Fatalf("ring len = %d, want %d", tr.Len(), capacity)
	}
	dump := tr.Dump()
	if dump.Total != n || dump.Dropped != n-capacity {
		t.Fatalf("total/dropped = %d/%d, want %d/%d", dump.Total, dump.Dropped, n, n-capacity)
	}
	names := make(map[string]bool)
	for _, s := range dump.Spans {
		names[s.Name] = true
	}
	for i := n - capacity; i < n; i++ {
		if !names[fmt.Sprintf("s%02d", i)] {
			t.Fatalf("recent span s%02d evicted; retained %v", i, names)
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, finish := tr.StartSpan(context.Background(), "w")
				finish(L("worker", w))
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != workers*per {
		t.Fatalf("total = %d, want %d", tr.Total(), workers*per)
	}
	// Span IDs must be unique among retained spans.
	seen := make(map[uint64]bool)
	for _, s := range tr.Spans() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestTraceJSONRoundTrip dumps a trace to JSON and back.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer(4)
	ctx, finish := tr.StartSpan(context.Background(), "outer")
	_, inner := tr.StartSpan(ctx, "inner")
	inner(L("x", 1))
	finish()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back TraceDump
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	orig := tr.Dump()
	if back.Total != orig.Total || back.Dropped != orig.Dropped || len(back.Spans) != len(orig.Spans) {
		t.Fatalf("round-trip header mismatch: %+v vs %+v", back, orig)
	}
	for i := range back.Spans {
		b, o := back.Spans[i], orig.Spans[i]
		if b.ID != o.ID || b.Parent != o.Parent || b.Name != o.Name ||
			b.StartUnixNano != o.StartUnixNano || b.DurationNanos != o.DurationNanos ||
			len(b.Labels) != len(o.Labels) {
			t.Fatalf("span %d mismatch: %+v vs %+v", i, b, o)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(8)
	// root → two concurrent workers, one with a nested step — the shape
	// explore.Enumerate produces.
	ctx, root := tr.StartSpan(context.Background(), "enumerate")
	w1ctx, w1 := tr.StartSpan(ctx, "worker1")
	_, w2 := tr.StartSpan(ctx, "worker2")
	_, step := tr.StartSpan(w1ctx, "step")
	step()
	w1(L("worker", 0))
	w2(L("worker", 1))
	root()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	tids := make(map[string]float64, 4)
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("phase = %v, want X", ev["ph"])
		}
		tids[ev["name"].(string)] = ev["tid"].(float64)
	}
	if math.IsNaN(tids["worker1"]) || tids["worker1"] == tids["worker2"] {
		t.Fatalf("concurrent workers must get separate tracks: %v", tids)
	}
	if tids["step"] != tids["worker1"] {
		t.Fatalf("nested step must share its worker's track: %v", tids)
	}
	if tids["enumerate"] == tids["worker1"] || tids["enumerate"] == tids["worker2"] {
		t.Fatalf("root must keep its own track: %v", tids)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(4)
	_, finish := tr.StartSpan(context.Background(), "s")
	finish()
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatal("reset must clear the ring")
	}
}

func TestDefaultStartSpan(t *testing.T) {
	DefaultTracer.Reset()
	_, finish := StartSpan(context.Background(), "default")
	finish()
	if DefaultTracer.Len() == 0 {
		t.Fatal("package-level StartSpan must record on DefaultTracer")
	}
	DefaultTracer.Reset()
}
