package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(2)
	reg.Histogram("lat", []float64{1, 2, 4}).Observe(1.5)
	tr := NewTracer(8)
	_, finish := tr.StartSpan(context.Background(), "req")
	finish()

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	for _, path := range []string{"/", "/metrics", "/trace", "/debug/pprof/", "/debug/vars"} {
		if code, _ := get(t, srv, path); code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, code)
		}
	}

	_, text := get(t, srv, "/metrics")
	if !strings.Contains(text, "counter hits 2") || !strings.Contains(text, "histogram lat") {
		t.Fatalf("/metrics text = %q", text)
	}

	_, body := get(t, srv, "/metrics?format=json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics json invalid: %v", err)
	}
	if snap.Counters["hits"] != 2 || snap.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}

	_, body = get(t, srv, "/trace")
	var dump TraceDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/trace json invalid: %v", err)
	}
	if len(dump.Spans) != 1 || dump.Spans[0].Name != "req" {
		t.Fatalf("trace = %+v", dump)
	}

	_, body = get(t, srv, "/trace?format=chrome")
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/trace chrome invalid: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("chrome events = %d", len(events))
	}

	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Fatal("unknown path must 404")
	}
}

// TestHandlerDefaults covers the nil → Default fallback and the one-shot
// expvar publication (a second Handler must not panic on re-publish).
func TestHandlerDefaults(t *testing.T) {
	Reset()
	Default.Counter("x").Inc()
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "counter x 1") {
		t.Fatalf("default handler: code=%d body=%q", code, body)
	}
	Handler(nil, nil) // second publication must not panic
	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "ccperf") {
		t.Fatalf("/debug/vars must include the ccperf registry: code=%d", code)
	}
	Reset()
}
