package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Label is one key/value annotation on a finished span.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label, formatting any value.
func L(key string, value any) Label {
	switch v := value.(type) {
	case string:
		return Label{Key: key, Value: v}
	case float64:
		return Label{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
	default:
		return Label{Key: key, Value: fmt.Sprint(v)}
	}
}

// SpanRecord is one finished span as stored in the ring and exported.
type SpanRecord struct {
	ID            uint64  `json:"id"`
	Parent        uint64  `json:"parent,omitempty"`
	Name          string  `json:"name"`
	StartUnixNano int64   `json:"start_unix_nano"`
	DurationNanos int64   `json:"duration_ns"`
	Labels        []Label `json:"labels,omitempty"`
}

// Tracer collects finished spans into a bounded ring: the most recent
// `capacity` spans are kept, older ones are overwritten. The zero value is
// not usable; construct with NewTracer.
type Tracer struct {
	mu     sync.Mutex
	ring   []SpanRecord
	next   int    // ring write position
	total  uint64 // spans ever finished (= dropped + retained)
	lastID uint64
	cap    int
}

// NewTracer returns a tracer retaining up to capacity spans (min 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity), cap: capacity}
}

type spanCtxKey struct{}

// FinishFunc ends a span, attaching any labels. It is safe to call from
// the goroutine that started the span; calling it more than once records
// the span more than once (don't).
type FinishFunc func(labels ...Label)

// StartSpan opens a span on this tracer. The returned context carries the
// span's identity so children started from it record their parent; the
// returned FinishFunc stamps the duration and commits the span to the
// ring. Typical use:
//
//	ctx, finish := tr.StartSpan(ctx, "explore.worker")
//	defer finish(telemetry.L("worker", i))
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, FinishFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	var parent uint64
	if p, ok := ctx.Value(spanCtxKey{}).(uint64); ok {
		parent = p
	}
	t.mu.Lock()
	t.lastID++
	id := t.lastID
	t.mu.Unlock()
	start := time.Now()
	ctx = context.WithValue(ctx, spanCtxKey{}, id)
	return ctx, func(labels ...Label) {
		rec := SpanRecord{
			ID:            id,
			Parent:        parent,
			Name:          name,
			StartUnixNano: start.UnixNano(),
			DurationNanos: time.Since(start).Nanoseconds(),
			Labels:        labels,
		}
		t.mu.Lock()
		if len(t.ring) < t.cap {
			t.ring = append(t.ring, rec)
		} else {
			t.ring[t.next] = rec
		}
		t.next = (t.next + 1) % t.cap
		t.total++
		t.mu.Unlock()
	}
}

// StartSpan opens a span on DefaultTracer.
func StartSpan(ctx context.Context, name string) (context.Context, FinishFunc) {
	return DefaultTracer.StartSpan(ctx, name)
}

// Spans returns the retained spans ordered by start time.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.ring...)
	t.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool { return out[a].StartUnixNano < out[b].StartUnixNano })
	return out
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Total returns the number of spans ever finished on this tracer,
// including those overwritten in the ring.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Reset drops all retained spans (span IDs keep increasing).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.total = 0
	t.mu.Unlock()
}

// TraceDump is the `/trace` and `-trace-out` JSON artifact.
type TraceDump struct {
	UnixNano int64        `json:"unix_nano"`
	Total    uint64       `json:"total_spans"`
	Dropped  uint64       `json:"dropped_spans"`
	Spans    []SpanRecord `json:"spans"`
}

// Dump captures the tracer's retained spans.
func (t *Tracer) Dump() TraceDump {
	spans := t.Spans()
	total := t.Total()
	return TraceDump{
		UnixNano: now(),
		Total:    total,
		Dropped:  total - uint64(len(spans)),
		Spans:    spans,
	}
}

// WriteJSON writes the trace dump as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Dump())
}

// WriteChromeTrace writes the retained spans in the Chrome trace_event
// array format, loadable in chrome://tracing and https://ui.perfetto.dev.
// A root span and each of its direct children get their own track (tid);
// deeper descendants join their top-level ancestor's track. Concurrent
// siblings — the explore workers under one enumeration — therefore render
// as separate lanes instead of overlapping on the root's.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	parent := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	// lane climbs to the ancestor sitting directly below the root (or the
	// root itself, for root spans).
	lane := func(id uint64) uint64 {
		for {
			p, ok := parent[id]
			if !ok || p == 0 {
				return id
			}
			if gp, ok := parent[p]; !ok || gp == 0 {
				return id
			}
			id = p
		}
	}
	type event struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`  // microseconds
		Dur  float64           `json:"dur"` // microseconds
		Pid  int               `json:"pid"`
		Tid  uint64            `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	events := make([]event, 0, len(spans))
	for _, s := range spans {
		ev := event{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.StartUnixNano) / 1e3,
			Dur:  float64(s.DurationNanos) / 1e3,
			Pid:  1,
			Tid:  lane(s.ID),
		}
		if len(s.Labels) > 0 {
			ev.Args = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				ev.Args[l.Key] = l.Value
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
