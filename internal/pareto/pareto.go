// Package pareto implements the Pareto-optimization filter of Section 3.4:
// among feasible (accuracy, objective) points — objective being execution
// time or cost — it extracts the configurations for which no other
// configuration has both higher accuracy and lower objective.
package pareto

import "sort"

// Point is one candidate: maximize Accuracy, minimize Objective. Payload
// carries the caller's configuration identity through the filter.
type Point struct {
	Accuracy  float64
	Objective float64
	Payload   any
}

// Dominates reports whether p dominates q: at least as good in both
// dimensions and strictly better in one.
func Dominates(p, q Point) bool {
	if p.Accuracy < q.Accuracy || p.Objective > q.Objective {
		return false
	}
	return p.Accuracy > q.Accuracy || p.Objective < q.Objective
}

// Frontier returns the Pareto-optimal subset of points, sorted by
// ascending accuracy. Duplicate (accuracy, objective) pairs collapse to
// the first occurrence.
func Frontier(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point(nil), points...)
	// Sort by accuracy descending; ties by objective ascending so the best
	// of each accuracy level comes first.
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Accuracy != sorted[b].Accuracy {
			return sorted[a].Accuracy > sorted[b].Accuracy
		}
		return sorted[a].Objective < sorted[b].Objective
	})
	var out []Point
	bestObj := sorted[0].Objective
	lastAcc := sorted[0].Accuracy
	out = append(out, sorted[0])
	for _, p := range sorted[1:] {
		if p.Accuracy == lastAcc {
			continue // same accuracy, objective can't be lower (sorted)
		}
		if p.Objective < bestObj {
			out = append(out, p)
			bestObj = p.Objective
			lastAcc = p.Accuracy
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Accuracy < out[b].Accuracy })
	return out
}

// IsOptimal reports whether p is non-dominated within points.
func IsOptimal(p Point, points []Point) bool {
	for _, q := range points {
		if Dominates(q, p) {
			return false
		}
	}
	return true
}

// Point3 is a three-objective candidate: maximize Accuracy, minimize both
// Time and Cost — the joint trade-off a cloud consumer actually faces when
// neither constraint alone binds.
type Point3 struct {
	Accuracy   float64
	Time, Cost float64
	Payload    any
}

// Dominates3 reports whether p dominates q in the (accuracy↑, time↓,
// cost↓) order: no worse in all three and strictly better in at least one.
func Dominates3(p, q Point3) bool {
	if p.Accuracy < q.Accuracy || p.Time > q.Time || p.Cost > q.Cost {
		return false
	}
	return p.Accuracy > q.Accuracy || p.Time < q.Time || p.Cost < q.Cost
}

// Frontier3 returns the non-dominated subset under Dominates3, sorted by
// descending accuracy then ascending time. Exact duplicates collapse to
// the first occurrence. The sweep is O(n²) in the worst case but prunes
// via the accuracy-sorted order (a point can only be dominated by points
// with accuracy ≥ its own).
func Frontier3(points []Point3) []Point3 {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point3(nil), points...)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Accuracy != sorted[b].Accuracy {
			return sorted[a].Accuracy > sorted[b].Accuracy
		}
		if sorted[a].Time != sorted[b].Time {
			return sorted[a].Time < sorted[b].Time
		}
		return sorted[a].Cost < sorted[b].Cost
	})
	var out []Point3
	for _, p := range sorted {
		dominated := false
		for _, q := range out {
			if Dominates3(q, p) || (q.Accuracy == p.Accuracy && q.Time == p.Time && q.Cost == p.Cost) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}
