package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	a := Point{Accuracy: 0.8, Objective: 10}
	b := Point{Accuracy: 0.7, Objective: 12}
	if !Dominates(a, b) {
		t.Fatal("a must dominate b")
	}
	if Dominates(b, a) {
		t.Fatal("b must not dominate a")
	}
	if Dominates(a, a) {
		t.Fatal("a point must not dominate itself")
	}
	// Trade-off: neither dominates.
	c := Point{Accuracy: 0.9, Objective: 20}
	if Dominates(a, c) || Dominates(c, a) {
		t.Fatal("trade-off points must not dominate each other")
	}
	// Equal accuracy, better objective dominates.
	d := Point{Accuracy: 0.8, Objective: 9}
	if !Dominates(d, a) {
		t.Fatal("same accuracy, lower objective must dominate")
	}
}

func TestFrontierSimple(t *testing.T) {
	pts := []Point{
		{Accuracy: 0.9, Objective: 10, Payload: "hi-acc"},
		{Accuracy: 0.5, Objective: 2, Payload: "cheap"},
		{Accuracy: 0.7, Objective: 5, Payload: "mid"},
		{Accuracy: 0.6, Objective: 6, Payload: "dominated"}, // worse than mid
		{Accuracy: 0.9, Objective: 12, Payload: "dup-acc"},  // worse than hi-acc
	}
	fr := Frontier(pts)
	if len(fr) != 3 {
		t.Fatalf("frontier size = %d, want 3: %+v", len(fr), fr)
	}
	// Sorted by ascending accuracy.
	want := []string{"cheap", "mid", "hi-acc"}
	for i, w := range want {
		if fr[i].Payload.(string) != w {
			t.Fatalf("frontier[%d] = %v, want %v", i, fr[i].Payload, w)
		}
	}
}

func TestFrontierEmptyAndSingle(t *testing.T) {
	if Frontier(nil) != nil {
		t.Fatal("empty frontier should be nil")
	}
	one := []Point{{Accuracy: 0.5, Objective: 1}}
	if fr := Frontier(one); len(fr) != 1 {
		t.Fatalf("single-point frontier = %d", len(fr))
	}
}

func TestFrontierAllSameAccuracy(t *testing.T) {
	pts := []Point{
		{Accuracy: 0.5, Objective: 3},
		{Accuracy: 0.5, Objective: 1},
		{Accuracy: 0.5, Objective: 2},
	}
	fr := Frontier(pts)
	if len(fr) != 1 || fr[0].Objective != 1 {
		t.Fatalf("frontier = %+v, want single best", fr)
	}
}

func TestIsOptimal(t *testing.T) {
	pts := []Point{
		{Accuracy: 0.9, Objective: 10},
		{Accuracy: 0.5, Objective: 2},
	}
	if !IsOptimal(pts[0], pts) {
		t.Fatal("non-dominated point reported dominated")
	}
	bad := Point{Accuracy: 0.4, Objective: 5}
	if IsOptimal(bad, pts) {
		t.Fatal("dominated point reported optimal")
	}
}

// Property: every frontier point is non-dominated in the input, and every
// input point is dominated by or equal to some frontier point.
func TestFrontierProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				Accuracy:  float64(rng.Intn(20)) / 20,
				Objective: float64(rng.Intn(50)),
				Payload:   i,
			}
		}
		fr := Frontier(pts)
		for _, p := range fr {
			if !IsOptimal(p, pts) {
				return false
			}
		}
		for _, p := range pts {
			covered := false
			for _, q := range fr {
				if q == p || Dominates(q, p) ||
					(q.Accuracy == p.Accuracy && q.Objective == p.Objective) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		// Frontier is strictly increasing in both dims.
		for i := 1; i < len(fr); i++ {
			if fr[i].Accuracy <= fr[i-1].Accuracy || fr[i].Objective <= fr[i-1].Objective {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDominates3(t *testing.T) {
	a := Point3{Accuracy: 0.8, Time: 10, Cost: 5}
	b := Point3{Accuracy: 0.7, Time: 12, Cost: 6}
	if !Dominates3(a, b) || Dominates3(b, a) {
		t.Fatal("3D dominance wrong")
	}
	if Dominates3(a, a) {
		t.Fatal("self-dominance")
	}
	// Trade-off in one dimension → no dominance.
	c := Point3{Accuracy: 0.7, Time: 5, Cost: 20}
	if Dominates3(a, c) || Dominates3(c, a) {
		t.Fatal("trade-off points must not dominate")
	}
}

func TestFrontier3(t *testing.T) {
	pts := []Point3{
		{Accuracy: 0.9, Time: 10, Cost: 10, Payload: "best-acc"},
		{Accuracy: 0.5, Time: 1, Cost: 9, Payload: "fast"},
		{Accuracy: 0.5, Time: 9, Cost: 1, Payload: "cheap"},
		{Accuracy: 0.5, Time: 10, Cost: 10, Payload: "dominated"},
		{Accuracy: 0.9, Time: 10, Cost: 10, Payload: "duplicate"},
	}
	fr := Frontier3(pts)
	if len(fr) != 3 {
		t.Fatalf("frontier3 = %d points: %+v", len(fr), fr)
	}
	names := map[string]bool{}
	for _, p := range fr {
		names[p.Payload.(string)] = true
	}
	for _, want := range []string{"best-acc", "fast", "cheap"} {
		if !names[want] {
			t.Fatalf("missing %s in %v", want, names)
		}
	}
	if Frontier3(nil) != nil {
		t.Fatal("empty frontier3")
	}
}

// Property: every Frontier3 member is non-dominated; every input point is
// dominated by or equal to some member.
func TestFrontier3Property(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point3, n)
		for i := range pts {
			pts[i] = Point3{
				Accuracy: float64(rng.Intn(10)) / 10,
				Time:     float64(rng.Intn(20)),
				Cost:     float64(rng.Intn(20)),
				Payload:  i,
			}
		}
		fr := Frontier3(pts)
		for _, p := range fr {
			for _, q := range pts {
				if Dominates3(q, p) {
					return false
				}
			}
		}
		for _, p := range pts {
			covered := false
			for _, q := range fr {
				if Dominates3(q, p) || (q.Accuracy == p.Accuracy && q.Time == p.Time && q.Cost == p.Cost) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
