package tenant

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"ccperf/internal/serving"
	"ccperf/internal/stats"
	"ccperf/internal/telemetry"
)

// LoadConfig parameterizes one open-loop multi-tenant replay. Each tenant
// generates its own Poisson arrival process at Spec.OfferedQPS (falling
// back to its QPS quota, then 20/s), so a flooding tenant is expressed as
// OfferedQPS ≫ QPS in the spec file.
type LoadConfig struct {
	// Duration is the wall-clock length of the replay (required).
	Duration time.Duration
	// Seed drives every tenant's arrival process (tenant i draws from
	// Seed+i in registry order, so runs replay deterministically).
	Seed int64
	// Cooldown keeps the fleet running idle after the last arrival so the
	// joint scaler can observe recovery (0 = none).
	Cooldown time.Duration
	// Scaler, when non-nil, folds the joint placement status — per-tenant
	// attributed cost, $/million-on-time, who degraded first — into the
	// report.
	Scaler *Scaler
}

// TenantReport is one tenant's slice of a multi-tenant load test.
type TenantReport struct {
	Name       string  `json:"name"`
	OfferedQPS float64 `json:"offered_qps"`
	QPSQuota   float64 `json:"qps_quota"`
	SLOMS      float64 `json:"slo_ms"`

	Submitted int `json:"submitted"`
	OK        int `json:"ok"`
	// Rejected counts quota rejections (the 429s) — deliberate
	// back-pressure on a tenant exceeding its own quota, excluded from
	// ErrorRate.
	Rejected int   `json:"rejected"`
	Shed     int   `json:"shed"`
	Expired  int   `json:"expired"`
	Faulted  int   `json:"faulted"`
	Retries  int64 `json:"retries"`

	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`

	// OnTime counts served requests that beat the tenant's SLO;
	// OnTimeFrac is their fraction of OK.
	OnTime     int64   `json:"on_time"`
	OnTimeFrac float64 `json:"on_time_frac"`

	MeanAccuracy float64 `json:"mean_accuracy"`
	PerVariant   []int   `json:"per_variant"`
	Degrades     int64   `json:"degrades"`
	Restores     int64   `json:"restores"`

	// Stages attributes this tenant's latency to pipeline stages.
	Stages serving.Stages `json:"stages"`
}

// ErrorRate is the tenant's shed+expired+faulted fraction of submissions.
// Quota rejections are excluded: a tenant over its own quota being told
// 429 is the isolation mechanism working, not a service failure.
func (t *TenantReport) ErrorRate() float64 {
	if t.Submitted == 0 {
		return 0
	}
	return float64(t.Shed+t.Expired+t.Faulted) / float64(t.Submitted)
}

// Report summarizes one multi-tenant load test: per-tenant rows plus the
// joint placement view.
type Report struct {
	Tenants     []TenantReport `json:"tenants"`
	WallSeconds float64        `json:"wall_seconds"`
	// Throughput is fleet-wide served requests per wall second.
	Throughput float64 `json:"throughput_rps"`
	// Joint is the scaler's final status (nil when no scaler ran): the
	// fleet bill split per tenant, $/million-on-time, degrade order.
	Joint *JointStatus `json:"joint,omitempty"`
}

// Tenant returns the named row (nil when absent).
func (r *Report) Tenant(name string) *TenantReport {
	for i := range r.Tenants {
		if r.Tenants[i].Name == name {
			return &r.Tenants[i]
		}
	}
	return nil
}

// ErrorRate is the worst per-tenant error rate — the chaos smoke gates on
// the fleet's weakest tenant, since a mean would let a noisy neighbor
// hide a starved one.
func (r *Report) ErrorRate() float64 {
	worst := 0.0
	for i := range r.Tenants {
		if e := r.Tenants[i].ErrorRate(); e > worst {
			worst = e
		}
	}
	return worst
}

// RunLoad replays every tenant's Poisson arrival process open-loop
// against the mux: arrivals fire at their scheduled offsets whether or
// not earlier requests completed. It returns after every response has
// arrived and the cooldown has elapsed. The caller owns Mux Start/Stop
// (and Scaler Start/Stop).
func RunLoad(m *Mux, cfg LoadConfig) (*Report, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("tenant: load config needs a positive duration")
	}
	specs := m.Registry().Specs()
	rep := &Report{Tenants: make([]TenantReport, len(specs))}

	ctx, finishReplay := m.cfg.Tracer.StartSpan(context.Background(), "tenant.replay")
	start := time.Now()
	var wg sync.WaitGroup

	for i, spec := range specs {
		rate := spec.OfferedQPS
		if rate <= 0 {
			rate = spec.QPS
		}
		if rate <= 0 {
			rate = 20
		}
		tr := &rep.Tenants[i]
		tr.Name = spec.Name
		tr.OfferedQPS = rate
		tr.QPSQuota = spec.QPS
		tr.SLOMS = spec.SLOMS
		tr.PerVariant = make([]int, len(m.Ladder(spec.Name)))

		wg.Add(1)
		go func(spec Spec, tr *TenantReport, rate float64, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			shape := m.Ladder(spec.Name)[0].Net.Input
			var mu sync.Mutex
			latencies := []float64{}
			var inner sync.WaitGroup
			elapsed := time.Duration(0)
			for n := int64(0); ; n++ {
				// Poisson process: exponential inter-arrival at the rate.
				elapsed += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
				if elapsed >= cfg.Duration {
					break
				}
				if d := time.Until(start.Add(elapsed)); d > 0 {
					time.Sleep(d)
				}
				img := serving.SyntheticImage(shape.C, shape.H, shape.W, seed+n)
				mu.Lock()
				tr.Submitted++
				mu.Unlock()
				ch, err := m.SubmitAs(ctx, spec.Name, img, time.Time{})
				if err != nil {
					mu.Lock()
					countTenantError(tr, err)
					mu.Unlock()
					continue
				}
				inner.Add(1)
				go func() {
					defer inner.Done()
					resp := <-ch
					mu.Lock()
					defer mu.Unlock()
					if resp.Err != nil {
						countTenantError(tr, resp.Err)
						return
					}
					tr.OK++
					if resp.Variant < len(tr.PerVariant) {
						tr.PerVariant[resp.Variant]++
					}
					tr.MeanAccuracy += resp.Accuracy
					latencies = append(latencies, resp.Total.Seconds())
				}()
			}
			inner.Wait()
			mu.Lock()
			defer mu.Unlock()
			if tr.OK > 0 {
				tr.MeanAccuracy /= float64(tr.OK)
				p50, p95, p99, max := stats.Summary(latencies)
				tr.P50MS, tr.P95MS, tr.P99MS, tr.MaxMS = p50*1000, p95*1000, p99*1000, max*1000
			}
		}(spec, tr, rate, cfg.Seed+int64(i))
	}
	wg.Wait()
	finishReplay(telemetry.L("tenants", len(specs)))
	if cfg.Cooldown > 0 {
		time.Sleep(cfg.Cooldown)
	}
	rep.WallSeconds = time.Since(start).Seconds()

	stages := m.StageStatsByTenant()
	totalOK := 0
	for i := range rep.Tenants {
		tr := &rep.Tenants[i]
		st := m.TenantStats(tr.Name)
		tr.Retries = st.Retries
		tr.OnTime = st.OnTime
		tr.Degrades = st.Degrades
		tr.Restores = st.Restores
		if tr.OK > 0 {
			tr.OnTimeFrac = float64(tr.OnTime) / float64(st.Served)
		}
		tr.Stages = stages[tr.Name]
		totalOK += tr.OK
	}
	if rep.WallSeconds > 0 {
		rep.Throughput = float64(totalOK) / rep.WallSeconds
	}
	if cfg.Scaler != nil {
		js := cfg.Scaler.Status()
		rep.Joint = &js
	}
	return rep, nil
}

func countTenantError(tr *TenantReport, err error) {
	switch {
	case isErr(err, ErrQuotaExceeded):
		tr.Rejected++
	case isErr(err, serving.ErrOverloaded):
		tr.Shed++
	case isErr(err, serving.ErrExpired):
		tr.Expired++
	case isErr(err, serving.ErrFaulted):
		tr.Faulted++
	}
}

func isErr(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// String renders the report for the CLI: one block per tenant plus the
// joint placement summary.
func (r *Report) String() string {
	var b strings.Builder
	for i := range r.Tenants {
		t := &r.Tenants[i]
		fmt.Fprintf(&b, "tenant %-10s: %d submitted, %d ok, %d rejected (429), %d shed, %d expired, %d faulted\n",
			t.Name, t.Submitted, t.OK, t.Rejected, t.Shed, t.Expired, t.Faulted)
		fmt.Fprintf(&b, "  latency  : p50 %.1f ms, p99 %.1f ms (SLO %.0f ms), %.1f%% on-time, %.2f%% errors\n",
			t.P50MS, t.P99MS, t.SLOMS, t.OnTimeFrac*100, t.ErrorRate()*100)
		fmt.Fprintf(&b, "  accuracy : %.1f%% mean proxy, ladder %v (%d degrades, %d restores)\n",
			t.MeanAccuracy*100, t.PerVariant, t.Degrades, t.Restores)
	}
	fmt.Fprintf(&b, "fleet: %.0f req/s served over %.2f s\n", r.Throughput, r.WallSeconds)
	if j := r.Joint; j != nil {
		fmt.Fprintf(&b, "joint: %d replicas, $%.4f total ($%.2f/hr), %d scale-outs, %d scale-ins\n",
			j.Replicas, j.Cost, j.CostPerHour, j.ScaleOuts, j.ScaleIns)
		if j.DegradedFirst != "" {
			fmt.Fprintf(&b, "joint: degraded first: %s; next in line: %v\n", j.DegradedFirst, j.DegradeOrder)
		}
		for _, tc := range j.Tenants {
			fmt.Fprintf(&b, "joint: %-10s share %.0f%%, $%.4f attributed, $%.2f/M on-time (%d on-time)\n",
				tc.Name, tc.Share*100, tc.CostUSD, tc.DollarsPerMillionOnTime, tc.OnTime)
		}
	}
	return b.String()
}
