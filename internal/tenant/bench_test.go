package tenant

import (
	"context"
	"sync"
	"testing"
	"time"

	"ccperf/internal/serving"
	"ccperf/internal/telemetry"
)

// BenchmarkTenantFairness measures the multi-tenant hot path end to end:
// two tenants submitting concurrently through quota admission and the
// deficit-round-robin batcher on a shared two-replica fleet. It is part
// of the benchdiff regression gate — a slowdown here means the fairness
// machinery got more expensive per request.
func BenchmarkTenantFairness(b *testing.B) {
	cfg := Config{
		Specs: []Spec{
			{Name: "a", Ladder: []float64{0}, QueueCap: 512},
			{Name: "b", Ladder: []float64{0}, QueueCap: 512, Weight: 2},
		},
		Replicas:     2,
		MaxBatch:     8,
		BatchTimeout: 200 * time.Microsecond,
		Registry:     telemetry.NewRegistry(),
		Tracer:       telemetry.NewTracer(64),
	}
	cfg.BuildLadder = func(ratios []float64) ([]serving.Variant, error) {
		return serving.DemoLadder(ratios)
	}
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m.Start()
	defer m.Stop()

	names := []string{"a", "b"}
	img := testTenantImage(1)
	// Warm both tenants' replicas and workspace pools before the timed
	// region so spin-up allocations don't skew the steady-state numbers.
	for i := 0; i < 16; i++ {
		if resp := m.InferAs(context.Background(), names[i%2], img, time.Time{}); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	const workers = 8
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := names[w%len(names)]
			for i := w; i < b.N; i += workers {
				resp := m.InferAs(context.Background(), name, img, time.Time{})
				if resp.Err != nil {
					b.Error(resp.Err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "req/s")
	}
}
