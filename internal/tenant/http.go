package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ccperf/internal/serving"
	"ccperf/internal/tensor"
)

// InferRequest is the POST /infer body on the multi-tenant gateway. It is
// the single-tenant serving.InferRequest plus the tenant label the caller
// submits as.
type InferRequest struct {
	Tenant string    `json:"tenant"`
	Image  []float32 `json:"image,omitempty"`
	Seed   int64     `json:"seed,omitempty"`
	// DeadlineMS overrides the tenant's deadline, in milliseconds from
	// arrival (0 = use the tenant spec's deadline, if any).
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
}

// InferResponse is the POST /infer reply.
type InferResponse struct {
	Tenant   string  `json:"tenant"`
	ID       int64   `json:"id"`
	Class    int     `json:"class"`
	Variant  int     `json:"variant"`
	Degree   string  `json:"degree"`
	Accuracy float64 `json:"accuracy"`
	QueueMS  float64 `json:"queue_ms"`
	TotalMS  float64 `json:"total_ms"`
	Batch    int     `json:"batch"`
	Attempts int     `json:"attempts"`
}

// StatusReply is the GET /gateway/status body: one row per tenant plus
// the fleet view and, when a joint scaler is attached, its placement
// status (per-tenant attributed cost and $/million-on-time).
type StatusReply struct {
	Replicas       int           `json:"replicas"`
	ReplicaSeconds float64       `json:"replica_seconds"`
	Tenants        []TenantStats `json:"tenants"`
	Joint          *JointStatus  `json:"joint,omitempty"`
}

// Handler exposes the multi-tenant mux over HTTP:
//
//	POST /infer           run one inference as a tenant (InferRequest → InferResponse)
//	GET  /gateway/status  per-tenant StatusReply rows as JSON
//
// A quota rejection maps to 429 Too Many Requests (same as shedding — both
// are back-pressure a load balancer should honor), an unknown tenant to
// 404, an expired deadline to 504, shutdown to 503. The scaler may be nil.
func Handler(m *Mux, sc *Scaler) http.Handler {
	hmux := http.NewServeMux()
	hmux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Tenant == "" {
			http.Error(w, "tenant field required", http.StatusBadRequest)
			return
		}
		spec, ok := m.Registry().Get(req.Tenant)
		if !ok {
			http.Error(w, ErrUnknownTenant.Error()+": "+req.Tenant, http.StatusNotFound)
			return
		}
		shape := m.Ladder(spec.Name)[0].Net.Input
		var img *tensor.Tensor
		switch {
		case len(req.Image) > 0:
			if len(req.Image) != shape.Volume() {
				http.Error(w, fmt.Sprintf("image length %d, want %d (%v)", len(req.Image), shape.Volume(), shape), http.StatusBadRequest)
				return
			}
			img = tensor.FromSlice(req.Image, shape.C, shape.H, shape.W)
		default:
			img = serving.SyntheticImage(shape.C, shape.H, shape.W, req.Seed)
		}
		var deadline time.Time
		switch {
		case req.DeadlineMS > 0:
			deadline = time.Now().Add(time.Duration(req.DeadlineMS * float64(time.Millisecond)))
		case spec.Deadline() > 0:
			deadline = time.Now().Add(spec.Deadline())
		}
		resp := m.InferAs(r.Context(), spec.Name, img, deadline)
		if resp.Err != nil {
			http.Error(w, resp.Err.Error(), statusFor(resp.Err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(InferResponse{
			Tenant: spec.Name,
			ID:     resp.ID, Class: resp.Class,
			Variant: resp.Variant, Degree: resp.Degree, Accuracy: resp.Accuracy,
			QueueMS:  float64(resp.Queue) / float64(time.Millisecond),
			TotalMS:  float64(resp.Total) / float64(time.Millisecond),
			Batch:    resp.Batch,
			Attempts: resp.Attempts,
		})
	})
	hmux.HandleFunc("/gateway/status", func(w http.ResponseWriter, r *http.Request) {
		reply := StatusReply{
			Replicas:       m.ReplicaCount(),
			ReplicaSeconds: m.ReplicaSeconds(),
			Tenants:        m.Stats(),
		}
		if sc != nil {
			js := sc.Status()
			reply.Joint = &js
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reply)
	})
	return hmux
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQuotaExceeded), errors.Is(err, serving.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, serving.ErrExpired):
		return http.StatusGatewayTimeout
	case errors.Is(err, serving.ErrStopped):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
