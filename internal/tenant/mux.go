package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ccperf/internal/fault"
	"ccperf/internal/serving"
	"ccperf/internal/stats"
	"ccperf/internal/telemetry"
	"ccperf/internal/tensor"
)

// Errors specific to multi-tenant admission. Queue overflow, expiry,
// shutdown and fault outcomes reuse the serving package's errors so
// callers handle one vocabulary.
var (
	// ErrQuotaExceeded means the tenant's token-bucket admission quota was
	// empty — the request is rejected at the tenant's own front door (HTTP
	// 429) without touching shared capacity.
	ErrQuotaExceeded = errors.New("tenant: admission quota exceeded")
	// ErrUnknownTenant means the request named a tenant the registry does
	// not hold.
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
)

// Config parameterizes a Mux. Zero fields take the documented defaults.
type Config struct {
	// Specs declare the tenants (required, ≥ 1, unique names).
	Specs []Spec
	// BuildLadder turns one tenant's prune ratios into its variant ladder
	// (default serving.DemoLadder). Called once per tenant at New.
	BuildLadder func(ratios []float64) ([]serving.Variant, error)
	// Replicas is the shared batcher count (default 2).
	Replicas int
	// MaxBatch caps a coalesced batch (default 8). Batches are always
	// single-tenant: each tenant runs its own nets.
	MaxBatch int
	// BatchTimeout is the longest an under-full batch waits for more
	// same-tenant requests when the fleet is otherwise idle (default 2ms).
	BatchTimeout time.Duration
	// QuantumRequests is the deficit-round-robin quantum in requests per
	// unit weight (default MaxBatch): tenant i earns Weight·Quantum
	// requests of replica time per scheduling round.
	QuantumRequests int
	// WarmupDelay delays a scaled-out replica's first pull (default 0).
	WarmupDelay time.Duration
	// Injector, when non-nil, drives chaos testing exactly as in
	// serving.Config: crashed replicas fail whole batches, per-request
	// injections go through the retry path.
	Injector fault.Injector
	// MaxRetries and RetryBackoff mirror serving.Config (defaults 2, 2ms).
	MaxRetries   int
	RetryBackoff time.Duration
	// Registry and Tracer receive telemetry (nil = package defaults).
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
}

func (c *Config) defaults() error {
	if len(c.Specs) == 0 {
		return fmt.Errorf("tenant: config needs at least one spec")
	}
	if c.BuildLadder == nil {
		c.BuildLadder = serving.DemoLadder
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 2 * time.Millisecond
	}
	if c.QuantumRequests <= 0 {
		c.QuantumRequests = c.MaxBatch
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	if c.Tracer == nil {
		c.Tracer = telemetry.DefaultTracer
	}
	return nil
}

// request is one queued submission, tagged with its tenant.
type request struct {
	id       int64
	tenant   *tenantState
	img      *tensor.Tensor
	deadline time.Time
	enqueued time.Time
	attempts int
	ctx      context.Context
	finish   telemetry.FinishFunc
	done     chan serving.Response
}

// respond finishes the request's span exactly once and delivers the
// response.
func (r *request) respond(resp serving.Response) {
	if r.finish != nil {
		r.finish(
			telemetry.L("tenant", r.tenant.spec.Name),
			telemetry.L("outcome", outcomeLabel(resp.Err)),
			telemetry.L("attempts", resp.Attempts),
		)
		r.finish = nil
	}
	r.done <- resp
}

func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, serving.ErrExpired):
		return "expired"
	case errors.Is(err, serving.ErrFaulted):
		return "faulted"
	case errors.Is(err, serving.ErrOverloaded):
		return "shed"
	case errors.Is(err, serving.ErrStopped):
		return "stopped"
	case errors.Is(err, ErrQuotaExceeded):
		return "rejected"
	default:
		return "error"
	}
}

// tenantMetrics holds one tenant's resolved instruments (names suffixed
// with the tenant, e.g. tenant.admitted_total.acme).
type tenantMetrics struct {
	submitted, admitted, rejected *telemetry.Counter
	shed, expired, served         *telemetry.Counter
	faulted, retries, onTime      *telemetry.Counter
	degrades, restores            *telemetry.Counter
	backlogGauge, variantGauge    *telemetry.Gauge
	queueWait, total              *telemetry.Histogram
	assembly, forward             *telemetry.Histogram
}

// tenantState is one tenant's runtime: its ladder, quota bucket, private
// backlog, DRR deficit, latency window and counters.
type tenantState struct {
	idx     int // registry position (scheduler order)
	spec    Spec
	ladder  []serving.Variant
	variant atomic.Int64
	bucket  *bucket

	// backlog and deficit are guarded by Mux.qMu.
	backlog []*request
	deficit float64
	quantum float64

	// window collects completed-request latencies (seconds) since the
	// last Observe, for the joint scaler's per-tenant p99.
	winMu  sync.Mutex
	window []float64

	m tenantMetrics
}

// muxReplica is one shared batcher's control block (stable id, private
// stop channel; see serving.replicaHandle).
type muxReplica struct {
	id      int
	stop    chan struct{}
	retired bool // guarded by Mux.scaleMu
}

// Mux is the multi-tenant gateway: per-tenant admission (quota bucket +
// bounded private backlog) in front of a shared replica fleet whose
// batchers pick single-tenant batches by weighted deficit round-robin.
// Construct with New, then Start; SubmitAs from any goroutine; Stop for a
// graceful drain. ScaleTo and SetVariant expose the two control axes to
// the joint scaler.
type Mux struct {
	cfg     Config
	reg     *Registry
	tenants []*tenantState
	startAt time.Time

	nextID   atomic.Int64
	stopping atomic.Bool
	started  atomic.Bool
	stopCh   chan struct{}

	submits sync.WaitGroup
	workers sync.WaitGroup

	// qMu guards every tenant backlog, the DRR cursor/deficits, and
	// current (the tenant mid-quantum). arrivals is a buffered(1) wakeup:
	// Submit nudges it, takeBatch re-nudges while backlog remains so every
	// sleeping replica eventually drains (cascade wakeups).
	qMu      sync.Mutex
	cursor   int
	current  int // tenant index still owed service this round, or -1
	arrivals chan struct{}

	// scaleMu guards the replica set and the replica-seconds integral,
	// with the same Stop-barrier discipline as serving.Gateway.
	scaleMu    sync.Mutex
	replicas   []*muxReplica
	replicaSeq int
	repSeconds float64
	repMark    time.Time

	// execMu guards the busy-time capacity accumulators.
	execMu      sync.Mutex
	execSeconds float64
	execServed  int64

	batches   *telemetry.Counter
	batchSize *telemetry.Histogram
	replicasG *telemetry.Gauge
}

// New validates the config, builds every tenant's ladder, and returns a
// mux (not yet serving).
func New(cfg Config) (*Mux, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	reg, err := NewRegistry(cfg.Specs)
	if err != nil {
		return nil, err
	}
	m := &Mux{
		cfg:      cfg,
		reg:      reg,
		stopCh:   make(chan struct{}),
		arrivals: make(chan struct{}, 1),
		current:  -1,
	}
	tr := cfg.Registry
	for i, spec := range reg.Specs() {
		ladder, err := cfg.BuildLadder(spec.Ladder)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: building ladder: %w", spec.Name, err)
		}
		if len(ladder) == 0 {
			return nil, fmt.Errorf("tenant %s: empty ladder", spec.Name)
		}
		t := &tenantState{
			idx:     i,
			spec:    spec,
			ladder:  ladder,
			bucket:  newBucket(spec.QPS, spec.Burst),
			quantum: spec.Weight * float64(cfg.QuantumRequests),
		}
		n := spec.Name
		t.m = tenantMetrics{
			submitted:    tr.Counter("tenant.submitted_total." + n),
			admitted:     tr.Counter("tenant.admitted_total." + n),
			rejected:     tr.Counter("tenant.rejected_total." + n),
			shed:         tr.Counter("tenant.shed_total." + n),
			expired:      tr.Counter("tenant.expired_total." + n),
			served:       tr.Counter("tenant.served_total." + n),
			faulted:      tr.Counter("tenant.faulted_total." + n),
			retries:      tr.Counter("tenant.retries_total." + n),
			onTime:       tr.Counter("tenant.on_time_total." + n),
			degrades:     tr.Counter("tenant.degrade_total." + n),
			restores:     tr.Counter("tenant.restore_total." + n),
			backlogGauge: tr.Gauge("tenant.backlog." + n),
			variantGauge: tr.Gauge("tenant.variant." + n),
			queueWait:    tr.Histogram("tenant.queue_seconds."+n, nil),
			total:        tr.Histogram("tenant.request_seconds."+n, nil),
			assembly:     tr.Histogram("tenant.stage_assembly_seconds."+n, nil),
			forward:      tr.Histogram("tenant.stage_forward_seconds."+n, nil),
		}
		m.tenants = append(m.tenants, t)
	}
	m.batches = tr.Counter("tenant.batches_total")
	m.batchSize = tr.Histogram("tenant.batch_size", telemetry.LinearBuckets(1, 1, 64))
	m.replicasG = tr.Gauge("tenant.replicas")
	for i := 0; i < cfg.Replicas; i++ {
		m.replicas = append(m.replicas, m.newReplicaLocked())
	}
	m.replicasG.Set(float64(len(m.replicas)))
	return m, nil
}

// Registry returns the mux's validated tenant registry.
func (m *Mux) Registry() *Registry { return m.reg }

// Config returns the resolved (defaulted) configuration.
func (m *Mux) Config() Config { return m.cfg }

func (m *Mux) newReplicaLocked() *muxReplica {
	id := m.replicaSeq
	m.replicaSeq++
	return &muxReplica{id: id, stop: make(chan struct{})}
}

// Start launches the shared batchers. The mux has no built-in controller:
// the joint Scaler (or the caller) owns both ladders and the fleet size.
func (m *Mux) Start() {
	if !m.started.CompareAndSwap(false, true) {
		return
	}
	m.scaleMu.Lock()
	m.startAt = time.Now()
	m.repMark = m.startAt
	for _, h := range m.replicas {
		m.workers.Add(1)
		go m.replica(h, 0)
	}
	m.scaleMu.Unlock()
}

// Stop drains and shuts down: in-flight submissions land, queued requests
// are served, goroutines exit. Safe to call once; SubmitAs after (or
// during) Stop returns serving.ErrStopped.
func (m *Mux) Stop() {
	if !m.stopping.CompareAndSwap(false, true) {
		return
	}
	m.submits.Wait()
	m.scaleMu.Lock()
	m.accrueLocked(time.Now())
	m.repMark = time.Time{}
	m.scaleMu.Unlock()
	close(m.stopCh)
	m.workers.Wait()
	// Anything still backlogged (Start never called, or a sleeping retry
	// re-enqueued after the drain) is answered ErrStopped.
	m.qMu.Lock()
	for _, t := range m.tenants {
		for _, r := range t.backlog {
			r.respond(serving.Response{ID: r.id, Err: serving.ErrStopped, Attempts: r.attempts})
		}
		t.backlog = nil
	}
	m.qMu.Unlock()
}

// accrueLocked folds elapsed replica-time into the replica-seconds
// integral. Callers hold scaleMu.
func (m *Mux) accrueLocked(now time.Time) {
	if !m.repMark.IsZero() {
		m.repSeconds += float64(len(m.replicas)) * now.Sub(m.repMark).Seconds()
	}
	m.repMark = now
}

// ReplicaSeconds returns the fleet-time integral ∑ replicas·dt since
// Start, in seconds.
func (m *Mux) ReplicaSeconds() float64 {
	m.scaleMu.Lock()
	defer m.scaleMu.Unlock()
	s := m.repSeconds
	if !m.repMark.IsZero() {
		s += float64(len(m.replicas)) * time.Since(m.repMark).Seconds()
	}
	return s
}

// ReplicaCount returns the current number of live replicas.
func (m *Mux) ReplicaCount() int {
	m.scaleMu.Lock()
	defer m.scaleMu.Unlock()
	return len(m.replicas)
}

// ExecStats reports cumulative served requests and batch busy-time across
// all replicas — the joint scaler's capacity estimator input.
func (m *Mux) ExecStats() (served int64, execSeconds float64) {
	m.execMu.Lock()
	defer m.execMu.Unlock()
	return m.execServed, m.execSeconds
}

// ScaleTo grows or shrinks the shared fleet to n (clamped to ≥ 1),
// returning the resulting count — the same contract as
// serving.Gateway.ScaleTo.
func (m *Mux) ScaleTo(n int) (int, error) {
	if n < 1 {
		n = 1
	}
	m.scaleMu.Lock()
	defer m.scaleMu.Unlock()
	if m.stopping.Load() {
		return len(m.replicas), serving.ErrStopped
	}
	m.accrueLocked(time.Now())
	cur := len(m.replicas)
	switch {
	case n > cur:
		for i := cur; i < n; i++ {
			h := m.newReplicaLocked()
			m.replicas = append(m.replicas, h)
			if m.started.Load() {
				m.workers.Add(1)
				go m.replica(h, m.cfg.WarmupDelay)
			}
		}
	case n < cur:
		for _, h := range m.replicas[n:] {
			if !h.retired {
				h.retired = true
				close(h.stop)
			}
		}
		m.replicas = m.replicas[:n]
	}
	m.replicasG.Set(float64(len(m.replicas)))
	return len(m.replicas), nil
}

// tenant resolves a name (exported lookups go through Registry).
func (m *Mux) tenant(name string) *tenantState {
	i := m.reg.index(name)
	if i < 0 {
		return nil
	}
	return m.tenants[i]
}

// SubmitAs enqueues one image for inference on behalf of the named tenant
// and returns a channel that will receive exactly one Response. A zero
// deadline applies the tenant's spec deadline. Quota rejection
// (ErrQuotaExceeded), backlog shedding (serving.ErrOverloaded) and
// shutdown (serving.ErrStopped) are reported immediately.
func (m *Mux) SubmitAs(ctx context.Context, name string, img *tensor.Tensor, deadline time.Time) (<-chan serving.Response, error) {
	t := m.tenant(name)
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	if img == nil {
		return nil, fmt.Errorf("tenant: nil image")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m.submits.Add(1)
	defer m.submits.Done()
	if m.stopping.Load() {
		return nil, serving.ErrStopped
	}
	now := time.Now()
	t.m.submitted.Inc()
	if !t.bucket.allow(now) {
		t.m.rejected.Inc()
		return nil, fmt.Errorf("%w: tenant %s over %g req/s", ErrQuotaExceeded, name, t.spec.QPS)
	}
	if deadline.IsZero() {
		if d := t.spec.Deadline(); d > 0 {
			deadline = now.Add(d)
		}
	}
	sctx, finish := m.cfg.Tracer.StartSpan(ctx, "tenant.request")
	r := &request{
		id:       m.nextID.Add(1),
		tenant:   t,
		img:      img,
		deadline: deadline,
		enqueued: now,
		attempts: 1,
		ctx:      sctx,
		finish:   finish,
		done:     make(chan serving.Response, 1),
	}
	m.qMu.Lock()
	if len(t.backlog) >= t.spec.QueueCap {
		m.qMu.Unlock()
		t.m.shed.Inc()
		finish(telemetry.L("tenant", name), telemetry.L("outcome", "shed"), telemetry.L("attempts", 0))
		return nil, serving.ErrOverloaded
	}
	t.backlog = append(t.backlog, r)
	t.m.backlogGauge.Set(float64(len(t.backlog)))
	m.qMu.Unlock()
	t.m.admitted.Inc()
	m.wake()
	return r.done, nil
}

// InferAs is the synchronous form of SubmitAs.
func (m *Mux) InferAs(ctx context.Context, name string, img *tensor.Tensor, deadline time.Time) serving.Response {
	ch, err := m.SubmitAs(ctx, name, img, deadline)
	if err != nil {
		return serving.Response{Err: err}
	}
	select {
	case resp := <-ch:
		return resp
	case <-ctx.Done():
		return serving.Response{Err: ctx.Err()}
	}
}

// wake nudges one sleeping replica (non-blocking; the buffer of one means
// a pending nudge absorbs duplicates).
func (m *Mux) wake() {
	select {
	case m.arrivals <- struct{}{}:
	default:
	}
}

// takeBatch picks the next single-tenant batch by weighted deficit
// round-robin: the scheduler visits tenant backlogs in registry order
// from the cursor; a fresh visit earns the tenant its quantum
// (Weight·QuantumRequests) of deficit; up to min(MaxBatch, deficit)
// requests are taken; a tenant with deficit left keeps the scheduler
// (current) until its quantum or backlog is spent, then the cursor moves
// on. An emptied backlog forfeits its deficit — credit never accumulates
// while idle. Returns (nil, nil) when every backlog is empty.
func (m *Mux) takeBatch() (*tenantState, []*request) {
	m.qMu.Lock()
	defer m.qMu.Unlock()
	n := len(m.tenants)
	if m.current >= 0 {
		t := m.tenants[m.current]
		if len(t.backlog) > 0 && t.deficit >= 1 {
			return t, m.dequeueLocked(t)
		}
		if len(t.backlog) == 0 {
			t.deficit = 0
		}
		m.cursor = (m.current + 1) % n
		m.current = -1
	}
	for scanned := 0; scanned < n; scanned++ {
		i := (m.cursor + scanned) % n
		t := m.tenants[i]
		if len(t.backlog) == 0 {
			t.deficit = 0
			continue
		}
		t.deficit += t.quantum
		m.current = i
		return t, m.dequeueLocked(t)
	}
	return nil, nil
}

// dequeueLocked takes up to min(MaxBatch, deficit) requests off t's
// backlog, charging its deficit. Callers hold qMu.
func (m *Mux) dequeueLocked(t *tenantState) []*request {
	take := m.cfg.MaxBatch
	if d := int(t.deficit); d < take {
		take = d
	}
	if take < 1 {
		take = 1 // a sub-1 quantum must not stall the queue
	}
	if l := len(t.backlog); l < take {
		take = l
	}
	batch := make([]*request, take)
	copy(batch, t.backlog[:take])
	rest := copy(t.backlog, t.backlog[take:])
	for j := rest; j < len(t.backlog); j++ {
		t.backlog[j] = nil
	}
	t.backlog = t.backlog[:rest]
	t.deficit -= float64(take)
	if len(t.backlog) == 0 {
		t.deficit = 0
		if m.current == t.idx {
			m.cursor = (t.idx + 1) % len(m.tenants)
			m.current = -1
		}
	}
	t.m.backlogGauge.Set(float64(len(t.backlog)))
	// Cascade wakeups: if anything remains queued anywhere, make sure
	// another sleeping replica gets a nudge (the buffered(1) channel may
	// have been drained by the replica that is now busy with this batch).
	for _, other := range m.tenants {
		if len(other.backlog) > 0 {
			m.wake()
			break
		}
	}
	return batch
}

// takeMore appends up to limit additional requests from t's backlog only
// (same-tenant coalescing after the batch-timeout wait).
func (m *Mux) takeMore(t *tenantState, limit int) []*request {
	m.qMu.Lock()
	defer m.qMu.Unlock()
	if limit <= 0 || len(t.backlog) == 0 {
		return nil
	}
	take := limit
	if l := len(t.backlog); l < take {
		take = l
	}
	batch := make([]*request, take)
	copy(batch, t.backlog[:take])
	rest := copy(t.backlog, t.backlog[take:])
	for j := rest; j < len(t.backlog); j++ {
		t.backlog[j] = nil
	}
	t.backlog = t.backlog[:rest]
	if t.deficit -= float64(take); t.deficit < 0 {
		t.deficit = 0
	}
	t.m.backlogGauge.Set(float64(len(t.backlog)))
	return batch
}

// idle reports whether every backlog is empty.
func (m *Mux) idle() bool {
	m.qMu.Lock()
	defer m.qMu.Unlock()
	for _, t := range m.tenants {
		if len(t.backlog) > 0 {
			return false
		}
	}
	return true
}

// replica is one shared batcher: sleep until an arrival nudge, take the
// next DRR batch, optionally coalesce more same-tenant requests when the
// fleet is otherwise idle, execute, repeat. A close of h.stop (scale-in)
// exits after the in-flight batch; a close of m.stopCh (shutdown) drains
// the backlogs first.
func (m *Mux) replica(h *muxReplica, warmup time.Duration) {
	defer m.workers.Done()
	if warmup > 0 {
		select {
		case <-time.After(warmup):
		case <-h.stop:
			return
		case <-m.stopCh:
			m.drain(h)
			return
		}
	}
	for {
		t, batch := m.takeBatch()
		if t == nil {
			select {
			case <-m.arrivals:
				continue
			case <-h.stop:
				return
			case <-m.stopCh:
				m.drain(h)
				return
			}
		}
		pulledAt := time.Now()
		if len(batch) < m.cfg.MaxBatch && m.idle() {
			// The fleet has nothing else to do: wait one batch timeout for
			// more of this tenant's requests to coalesce.
			timer := time.NewTimer(m.cfg.BatchTimeout)
			select {
			case <-timer.C:
			case <-h.stop:
			case <-m.stopCh:
			}
			timer.Stop()
			batch = append(batch, m.takeMore(t, m.cfg.MaxBatch-len(batch))...)
		}
		m.execute(h, t, batch, pulledAt)
		select {
		case <-h.stop:
			return
		default:
		}
	}
}

// drain serves whatever is still backlogged at shutdown. Multiple
// replicas drain concurrently until every backlog is empty.
func (m *Mux) drain(h *muxReplica) {
	for {
		t, batch := m.takeBatch()
		if t == nil {
			return
		}
		m.execute(h, t, batch, time.Now())
	}
}

// execute runs one single-tenant batch through the tenant's current
// ladder rung: expired requests are answered ErrExpired, fault-injected
// ones go through the retry path, the rest run the variant's forward
// pass. Stage latencies land in both the tenant's keyed histograms and
// the mux aggregates.
func (m *Mux) execute(h *muxReplica, t *tenantState, batch []*request, pulledAt time.Time) {
	if len(batch) == 0 {
		return
	}
	now := time.Now()
	t.m.assembly.Observe(now.Sub(pulledAt).Seconds())
	live := batch[:0]
	for _, r := range batch {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			t.m.expired.Inc()
			age := now.Sub(r.enqueued)
			r.respond(serving.Response{ID: r.id, Err: serving.ErrExpired, Attempts: r.attempts, Queue: age, Total: age})
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	var failed []*request
	if inj := m.cfg.Injector; inj != nil {
		if inj.CrashActive(h.id, now.Sub(m.startAt).Seconds()) {
			failed, live = live, nil
		} else {
			keep := live[:0]
			for _, r := range live {
				if inj.FailRequest(h.id, r.id, r.attempts) {
					failed = append(failed, r)
				} else {
					keep = append(keep, r)
				}
			}
			live = keep
		}
	}
	for _, r := range failed {
		t.m.faulted.Inc()
		m.retryOrFail(r)
	}
	if len(live) == 0 {
		return
	}
	vi := int(t.variant.Load())
	v := &t.ladder[vi]
	imgs := make([]*tensor.Tensor, len(live))
	for i, r := range live {
		imgs[i] = r.img
	}
	parent := live[0].ctx
	if parent == nil {
		parent = context.Background()
	}
	execStart := time.Now()
	bctx, finish := m.cfg.Tracer.StartSpan(parent, "tenant.batch")
	_, finishFwd := m.cfg.Tracer.StartSpan(bctx, "tenant.forward")
	outs := v.Net.ForwardBatch(imgs, 1)
	fwdDone := time.Now()
	finishFwd(telemetry.L("tenant", t.spec.Name))
	t.m.forward.Observe(fwdDone.Sub(execStart).Seconds())
	finish(
		telemetry.L("tenant", t.spec.Name),
		telemetry.L("replica", h.id),
		telemetry.L("batch", len(live)),
		telemetry.L("variant", v.Degree.Label()),
	)
	m.batches.Inc()
	m.batchSize.Observe(float64(len(live)))
	done := time.Now()
	m.execMu.Lock()
	m.execSeconds += done.Sub(execStart).Seconds()
	m.execServed += int64(len(live))
	m.execMu.Unlock()
	slo := t.spec.SLO()
	for i, r := range live {
		total := done.Sub(r.enqueued)
		t.m.served.Inc()
		if slo <= 0 || total <= slo {
			t.m.onTime.Inc()
		}
		t.m.queueWait.Observe(now.Sub(r.enqueued).Seconds())
		t.m.total.Observe(total.Seconds())
		t.observeLatency(total.Seconds())
		r.respond(serving.Response{
			ID:       r.id,
			Class:    outs[i].ArgMax(),
			Variant:  vi,
			Degree:   v.Degree.Label(),
			Accuracy: v.Accuracy,
			Queue:    now.Sub(r.enqueued),
			Total:    total,
			Batch:    len(live),
			Attempts: r.attempts,
		})
	}
}

// retryOrFail handles one fault-injected request, mirroring the serving
// gateway: exponential backoff with deterministic jitter, re-enqueue into
// the tenant's own backlog, ErrFaulted when the budget runs out.
func (m *Mux) retryOrFail(r *request) {
	t := r.tenant
	fail := func(err error) {
		age := time.Since(r.enqueued)
		r.respond(serving.Response{ID: r.id, Err: err, Attempts: r.attempts, Queue: age, Total: age})
	}
	if r.attempts > m.cfg.MaxRetries || m.stopping.Load() {
		fail(serving.ErrFaulted)
		return
	}
	backoff := m.cfg.RetryBackoff << uint(r.attempts-1)
	backoff += time.Duration(fault.Frac(uint64(r.id)*0x9e3779b97f4a7c15+uint64(r.attempts)) * float64(backoff))
	if !r.deadline.IsZero() && time.Now().Add(backoff).After(r.deadline) {
		t.m.expired.Inc()
		fail(serving.ErrExpired)
		return
	}
	r.attempts++
	t.m.retries.Inc()
	m.workers.Add(1)
	go func() {
		defer m.workers.Done()
		time.Sleep(backoff)
		if m.stopping.Load() {
			fail(serving.ErrStopped)
			return
		}
		m.qMu.Lock()
		if len(t.backlog) >= t.spec.QueueCap {
			m.qMu.Unlock()
			t.m.shed.Inc()
			fail(serving.ErrOverloaded)
			return
		}
		t.backlog = append(t.backlog, r)
		t.m.backlogGauge.Set(float64(len(t.backlog)))
		m.qMu.Unlock()
		m.wake()
	}()
}

// observeLatency adds one completed-request latency to the tenant's
// control window.
func (t *tenantState) observeLatency(sec float64) {
	t.winMu.Lock()
	t.window = append(t.window, sec)
	t.winMu.Unlock()
}

// takeWindow swaps out the tenant's latency window.
func (t *tenantState) takeWindow() []float64 {
	t.winMu.Lock()
	w := t.window
	t.window = nil
	t.winMu.Unlock()
	return w
}

// CurrentVariant returns the rung the named tenant serves at (-1 for an
// unknown tenant).
func (m *Mux) CurrentVariant(name string) int {
	t := m.tenant(name)
	if t == nil {
		return -1
	}
	return int(t.variant.Load())
}

// SetVariant moves the named tenant's ladder to rung target (clamped),
// returning the rung now in effect. Rungs crossed count as degrades or
// restores in the tenant's counters. ctx carries the caller's decision
// span so the move links to the joint verb that caused it.
func (m *Mux) SetVariant(ctx context.Context, name string, target int) (int, error) {
	t := m.tenant(name)
	if t == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if target < 0 {
		target = 0
	}
	if last := len(t.ladder) - 1; target > last {
		target = last
	}
	for {
		cur := t.variant.Load()
		next := int64(target)
		if next == cur {
			return target, nil
		}
		if !t.variant.CompareAndSwap(cur, next) {
			continue
		}
		t.m.variantGauge.Set(float64(next))
		if steps := next - cur; steps > 0 {
			t.m.degrades.Add(steps)
		} else {
			t.m.restores.Add(-steps)
		}
		_, finish := m.cfg.Tracer.StartSpan(ctx, "tenant.set_variant")
		finish(
			telemetry.L("tenant", name),
			telemetry.L("from", t.ladder[cur].Degree.Label()),
			telemetry.L("to", t.ladder[next].Degree.Label()),
		)
		return target, nil
	}
}

// Observation is one tenant's control-tick view: the drained latency
// window plus cumulative counters the scaler turns into rates.
type Observation struct {
	Name      string  `json:"name"`
	P99       float64 `json:"p99_seconds"`
	Samples   int     `json:"samples"`
	QueueFrac float64 `json:"queue_frac"`
	Variant   int     `json:"variant"`
	Submitted int64   `json:"submitted"`
	Rejected  int64   `json:"rejected"`
	Shed      int64   `json:"shed"`
	Expired   int64   `json:"expired"`
	Faulted   int64   `json:"faulted"`
	Served    int64   `json:"served"`
	OnTime    int64   `json:"on_time"`
}

// Observe drains the named tenant's latency window and snapshots its
// counters — one control tick's per-tenant observation.
func (m *Mux) Observe(name string) (Observation, error) {
	t := m.tenant(name)
	if t == nil {
		return Observation{}, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	window := t.takeWindow()
	m.qMu.Lock()
	backlog := len(t.backlog)
	m.qMu.Unlock()
	return Observation{
		Name:      name,
		P99:       stats.Percentile(window, 0.99),
		Samples:   len(window),
		QueueFrac: float64(backlog) / float64(t.spec.QueueCap),
		Variant:   int(t.variant.Load()),
		Submitted: t.m.submitted.Value(),
		Rejected:  t.m.rejected.Value(),
		Shed:      t.m.shed.Value(),
		Expired:   t.m.expired.Value(),
		Faulted:   t.m.faulted.Value(),
		Served:    t.m.served.Value(),
		OnTime:    t.m.onTime.Value(),
	}, nil
}

// TenantStats is one tenant's row in /gateway/status and the loadtest
// report.
type TenantStats struct {
	Name     string  `json:"name"`
	Variant  int     `json:"variant"`
	Degree   string  `json:"degree"`
	Accuracy float64 `json:"accuracy"`
	SLOMS    float64 `json:"slo_ms"`
	QPSQuota float64 `json:"qps_quota"`
	Weight   float64 `json:"weight"`
	Backlog  int     `json:"backlog"`
	QueueCap int     `json:"queue_cap"`

	Submitted int64 `json:"submitted"`
	Admitted  int64 `json:"admitted"`
	// Rejected counts quota rejections (HTTP 429) — intentional
	// back-pressure, tallied separately from error outcomes.
	Rejected int64 `json:"rejected"`
	Shed     int64 `json:"shed"`
	Expired  int64 `json:"expired"`
	Served   int64 `json:"served"`
	Faulted  int64 `json:"faulted"`
	Retries  int64 `json:"retries"`
	// OnTime counts served requests that beat the tenant's SLO.
	OnTime   int64 `json:"on_time"`
	Degrades int64 `json:"degrades"`
	Restores int64 `json:"restores"`
}

// TenantStats snapshots one tenant (zero value for unknown names).
func (m *Mux) TenantStats(name string) TenantStats {
	t := m.tenant(name)
	if t == nil {
		return TenantStats{}
	}
	m.qMu.Lock()
	backlog := len(t.backlog)
	m.qMu.Unlock()
	vi := int(t.variant.Load())
	v := t.ladder[vi]
	return TenantStats{
		Name:      name,
		Variant:   vi,
		Degree:    v.Degree.Label(),
		Accuracy:  v.Accuracy,
		SLOMS:     t.spec.SLOMS,
		QPSQuota:  t.spec.QPS,
		Weight:    t.spec.Weight,
		Backlog:   backlog,
		QueueCap:  t.spec.QueueCap,
		Submitted: t.m.submitted.Value(),
		Admitted:  t.m.admitted.Value(),
		Rejected:  t.m.rejected.Value(),
		Shed:      t.m.shed.Value(),
		Expired:   t.m.expired.Value(),
		Served:    t.m.served.Value(),
		Faulted:   t.m.faulted.Value(),
		Retries:   t.m.retries.Value(),
		OnTime:    t.m.onTime.Value(),
		Degrades:  t.m.degrades.Value(),
		Restores:  t.m.restores.Value(),
	}
}

// Stats returns every tenant's row in registry (name) order.
func (m *Mux) Stats() []TenantStats {
	out := make([]TenantStats, 0, len(m.tenants))
	for _, t := range m.tenants {
		out = append(out, m.TenantStats(t.spec.Name))
	}
	return out
}

// StageStatsByTenant summarizes each tenant's per-stage latency
// histograms, keyed by tenant name.
func (m *Mux) StageStatsByTenant() map[string]serving.Stages {
	out := make(map[string]serving.Stages, len(m.tenants))
	for _, t := range m.tenants {
		out[t.spec.Name] = serving.Stages{
			QueueWait:     serving.SummarizeStage(t.m.queueWait),
			BatchAssembly: serving.SummarizeStage(t.m.assembly),
			NNForward:     serving.SummarizeStage(t.m.forward),
		}
	}
	return out
}

// Ladder returns the named tenant's variant ladder (nil for unknown
// names; shared slice, do not mutate).
func (m *Mux) Ladder(name string) []serving.Variant {
	t := m.tenant(name)
	if t == nil {
		return nil
	}
	return t.ladder
}
