package tenant

import (
	"testing"
	"time"

	"ccperf/internal/autoscale"
	"ccperf/internal/telemetry"
)

// TestEndToEndFloodIsolationAndJointPlacement is the PR's acceptance
// scenario, asserted rather than logged: tenant A floods at 5× its
// admission quota while tenant B trickles inside its own; after a joint
// load test,
//
//   - B's p99 stays under B's SLO and B's error rate under 1% (quota +
//     DRR isolation held),
//   - A's flood shows up as quota rejections in A's own ledger,
//   - the joint report prices each tenant's $/million-on-time requests,
//     and names A — the tenant with the largest accuracy-per-dollar
//     slack — as the one that degraded first.
func TestEndToEndFloodIsolationAndJointPlacement(t *testing.T) {
	// Rates are sized so the test also passes under -race (~20× slower
	// forwards): B's admitted load stays under its DRR share of one
	// replica even then, and B's SLO leaves room for one A-quantum of
	// queueing ahead of each B request.
	specs := []Spec{
		// A: 5× overload (offered 100/s vs 20/s quota), an impossible
		// 1ms SLO so the policy sees sustained violation, and a cheap
		// 3-rung ladder whose profile frees real capacity per rung.
		{Name: "a", Ladder: []float64{0, 0.5, 0.9}, SLOMS: 1, QPS: 20, Burst: 5, OfferedQPS: 100},
		// B: inside quota, generous SLO, a ladder whose profile frees
		// nothing — degrading B is never worth it.
		{Name: "b", Ladder: []float64{0, 0.9}, SLOMS: 500, QPS: 20, OfferedQPS: 8},
	}
	m := testMux(t, Config{
		Specs:    specs,
		Replicas: 1,
		MaxBatch: 2,
	})
	profiles := map[string][]autoscale.Profile{
		"a": ProfilesFromLadder(m.Ladder("a"), []float64{1, 1.6, 2.5}),
		"b": ProfilesFromLadder(m.Ladder("b"), []float64{1, 1}),
	}
	sc, err := NewScaler(m, ScalerConfig{
		Policy: autoscale.JointPolicy{
			// MaxReplicas = 1 closes the scale-out escape hatch: capacity
			// pressure must be paid in accuracy, exposing degrade order.
			Limits: autoscale.Limits{MinReplicas: 1, MaxReplicas: 1, PricePerReplicaHour: 1.0},
		},
		Profiles: profiles,
		Interval: 25 * time.Millisecond,
		Registry: telemetry.NewRegistry(),
		Tracer:   telemetry.NewTracer(256),
	})
	if err != nil {
		t.Fatal(err)
	}

	m.Start()
	sc.Start()
	rep, runErr := RunLoad(m, LoadConfig{
		Duration: 1200 * time.Millisecond,
		Seed:     42,
		Cooldown: 100 * time.Millisecond,
		Scaler:   sc,
	})
	sc.Stop()
	m.Stop()
	if runErr != nil {
		t.Fatal(runErr)
	}

	a := rep.Tenant("a")
	b := rep.Tenant("b")
	if a == nil || b == nil {
		t.Fatalf("report missing tenant rows: %+v", rep.Tenants)
	}

	// Isolation: the quiet tenant never notices the flood.
	if b.P99MS > b.SLOMS {
		t.Fatalf("tenant b p99 %.1fms exceeds its %.0fms SLO under tenant a's flood", b.P99MS, b.SLOMS)
	}
	if er := b.ErrorRate(); er >= 0.01 {
		t.Fatalf("tenant b error rate %.2f%%, want < 1%%", er*100)
	}
	if b.Rejected != 0 {
		t.Fatalf("tenant b inside quota was rejected %d times", b.Rejected)
	}

	// Back-pressure: a 5× flood should lose over half its submissions at
	// its own front door, in its own ledger.
	if a.Rejected <= a.Submitted/2 {
		t.Fatalf("tenant a offered 5× quota but only %d of %d submissions were quota-rejected",
			a.Rejected, a.Submitted)
	}

	// Joint placement: the report prices each tenant and names who paid
	// for capacity pressure first.
	j := rep.Joint
	if j == nil {
		t.Fatal("report carries no joint status")
	}
	if j.DegradedFirst != "a" {
		t.Fatalf("degraded first = %q, want tenant a (largest accuracy-per-dollar slack); last decision: %+v",
			j.DegradedFirst, j.LastDecision)
	}
	if a.Degrades == 0 {
		t.Fatal("tenant a's ledger shows no degrades despite DegradedFirst")
	}
	if len(j.Tenants) != 2 {
		t.Fatalf("joint status has %d tenant rows, want 2", len(j.Tenants))
	}
	var shares float64
	for _, tc := range j.Tenants {
		shares += tc.Share
		if tc.Name == "b" {
			if tc.OnTime == 0 {
				t.Fatal("tenant b served inside a 300ms SLO but has no on-time requests")
			}
			if tc.DollarsPerMillionOnTime <= 0 {
				t.Fatalf("tenant b $/M-on-time = %v, want > 0", tc.DollarsPerMillionOnTime)
			}
		}
	}
	if shares < 0.99 || shares > 1.01 {
		t.Fatalf("cost shares sum to %v, want 1", shares)
	}
	if j.Cost <= 0 || j.ReplicaSeconds <= 0 {
		t.Fatalf("joint bill empty: cost=%v replica_seconds=%v", j.Cost, j.ReplicaSeconds)
	}
}
