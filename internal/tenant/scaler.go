package tenant

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ccperf/internal/autoscale"
	"ccperf/internal/serving"
	"ccperf/internal/telemetry"
)

// ProfilesFromLadder derives joint-policy profiles from a built variant
// ladder: accuracy proxies come from the variants, speeds from the caller
// (predictor-derived per-batch time ratios; nil = all 1, a conservative
// "degrading frees nothing" model that makes the policy prefer replicas).
// Use autoscale.BuildProfiles when a predictor is available.
func ProfilesFromLadder(ladder []serving.Variant, speeds []float64) []autoscale.Profile {
	out := make([]autoscale.Profile, len(ladder))
	for i, v := range ladder {
		speed := 1.0
		if i < len(speeds) && speeds[i] > 0 {
			speed = speeds[i]
		}
		out[i] = autoscale.Profile{Degree: v.Degree.Label(), Accuracy: v.Accuracy, Speed: speed}
	}
	return out
}

// ScalerConfig parameterizes a joint Scaler. Zero fields take the
// documented defaults.
type ScalerConfig struct {
	// Policy is the joint decision table; its Limits bound the shared
	// fleet (replica caps, price, joint budget).
	Policy autoscale.JointPolicy
	// Profiles describes each tenant's ladder to the policy, keyed by
	// tenant name (required for every tenant; build with
	// autoscale.BuildProfiles or ProfilesFromLadder).
	Profiles map[string][]autoscale.Profile
	// Interval is the control tick period (default 250ms, min 1ms).
	Interval time.Duration
	// Registry and Tracer receive telemetry (nil = package defaults).
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
}

// JointDecision is one applied joint tick, kept for status and tests.
type JointDecision struct {
	Tick   int64                 `json:"tick"`
	Verb   string                `json:"verb"`
	Tenant string                `json:"tenant,omitempty"`
	Reason string                `json:"reason"`
	Signal autoscale.JointSignal `json:"signal"`
}

// tenantScalerState is the scaler's per-tenant delta bookkeeping plus its
// resolved autoscale.tenant.* instruments.
type tenantScalerState struct {
	name          string
	profiles      []autoscale.Profile
	lastSubmitted int64
	lastErrors    int64
	cumServed     int64

	degrades, restores *telemetry.Counter
	costPerHour        *telemetry.Gauge
	arrivalRate        *telemetry.Gauge
	p99Gauge           *telemetry.Gauge
}

// Scaler drives a Mux along both joint axes: the shared replica count and
// each tenant's ladder rung. Every tick it assembles one per-tenant
// signal set (arrival rates, p99 vs SLO, queue pressure, attributed $/hr),
// asks the pure autoscale.JointPolicy for a move, and actuates it through
// Mux.ScaleTo / Mux.SetVariant — the multi-tenant counterpart of
// autoscale.Autoscaler.
type Scaler struct {
	mux      *Mux
	pol      autoscale.JointPolicy
	interval time.Duration
	tracer   *telemetry.Tracer

	stopOnce  sync.Once
	startOnce sync.Once
	stopCh    chan struct{}
	done      chan struct{}

	mu          sync.Mutex
	ticks       int64
	counts      [5]int64 // per-verb, indexed by autoscale.Verb
	healthy     int
	sinceScale  int
	capEstimate float64
	lastServed  int64
	lastExecSec float64
	tstates     []*tenantScalerState
	// degradedFirst records the first tenant the policy ever degraded —
	// the observable answer to "who pays for capacity pressure first".
	degradedFirst string
	last          JointDecision

	ticksC *telemetry.Counter
	verbs  [5]*telemetry.Counter
	repsG  *telemetry.Gauge
	costG  *telemetry.Gauge
}

// NewScaler validates the config and binds a scaler to m (not yet
// ticking). Every tenant needs a profile set matching its ladder length.
func NewScaler(m *Mux, cfg ScalerConfig) (*Scaler, error) {
	if m == nil {
		return nil, fmt.Errorf("tenant: nil mux")
	}
	cfg.Policy = cfg.Policy.WithDefaults()
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Interval < time.Millisecond {
		cfg.Interval = time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.DefaultTracer
	}
	reg := cfg.Registry
	s := &Scaler{
		mux:      m,
		pol:      cfg.Policy,
		interval: cfg.Interval,
		tracer:   cfg.Tracer,
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
		ticksC:   reg.Counter("autoscale.tenant.ticks_total"),
		repsG:    reg.Gauge("autoscale.tenant.replicas"),
		costG:    reg.Gauge("autoscale.tenant.cost_per_hour"),
	}
	for v := autoscale.Hold; v <= autoscale.Restore; v++ {
		s.verbs[v] = reg.Counter("autoscale.tenant." + v.String() + "_total")
	}
	for _, name := range m.Registry().Names() {
		prof := cfg.Profiles[name]
		ladder := m.Ladder(name)
		if len(prof) == 0 {
			return nil, fmt.Errorf("tenant: scaler needs profiles for tenant %s", name)
		}
		if len(prof) != len(ladder) {
			return nil, fmt.Errorf("tenant: %d profiles for tenant %s's %d-rung ladder",
				len(prof), name, len(ladder))
		}
		s.tstates = append(s.tstates, &tenantScalerState{
			name:        name,
			profiles:    prof,
			degrades:    reg.Counter("autoscale.tenant.degrade_total." + name),
			restores:    reg.Counter("autoscale.tenant.restore_total." + name),
			costPerHour: reg.Gauge("autoscale.tenant.cost_per_hour." + name),
			arrivalRate: reg.Gauge("autoscale.tenant.arrival_rate." + name),
			p99Gauge:    reg.Gauge("autoscale.tenant.p99_seconds." + name),
		})
	}
	// Start the cooldown satisfied so the first genuine surge can act.
	s.sinceScale = s.pol.CooldownTicks
	s.repsG.Set(float64(m.ReplicaCount()))
	return s, nil
}

// Policy returns the scaler's joint decision table.
func (s *Scaler) Policy() autoscale.JointPolicy { return s.pol }

// Interval returns the resolved tick period.
func (s *Scaler) Interval() time.Duration { return s.interval }

// Start launches the tick loop. Call after Mux.Start.
func (s *Scaler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			ticker := time.NewTicker(s.interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					s.Tick()
				case <-s.stopCh:
					return
				}
			}
		}()
	})
}

// Stop halts the tick loop (idempotent; does not stop the mux).
func (s *Scaler) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.startOnce.Do(func() { close(s.done) })
	<-s.done
}

// Tick runs one joint control step: observe every tenant, decide, actuate.
// Exported so tests can step the loop deterministically.
func (s *Scaler) Tick() JointDecision {
	s.mu.Lock()
	defer s.mu.Unlock()

	sig := s.observeLocked()
	act := s.pol.Decide(sig)
	s.applyLocked(act, sig)

	s.ticks++
	d := JointDecision{
		Tick: s.ticks, Verb: act.Verb.String(),
		Tenant: act.Tenant, Reason: act.Reason, Signal: sig,
	}
	s.last = d
	return d
}

// observeLocked assembles one tick's JointSignal: per-tenant rates and
// windows, served-share cost attribution, and the busy-time capacity
// estimator normalized to rung 0 by the served-weighted mean speed.
func (s *Scaler) observeLocked() autoscale.JointSignal {
	dtSec := s.interval.Seconds()
	replicas := s.mux.ReplicaCount()
	fleetRate := float64(replicas) * s.pol.Limits.PricePerReplicaHour

	var totalServed int64
	obs := make([]Observation, len(s.tstates))
	for i, ts := range s.tstates {
		o, err := s.mux.Observe(ts.name)
		if err != nil {
			continue
		}
		obs[i] = o
		ts.cumServed = o.Served
		totalServed += o.Served
	}

	var meanSpeedNum, meanSpeedDen float64
	tenants := make([]autoscale.TenantSignal, 0, len(s.tstates))
	for i, ts := range s.tstates {
		o := obs[i]
		spec, _ := s.mux.Registry().Get(ts.name)
		// Offered = everything that knocked (admitted + shed + rejected);
		// errors exclude quota rejections — those are intentional
		// back-pressure, not service failures.
		offered := o.Submitted
		errs := o.Shed + o.Expired + o.Faulted
		arrival := float64(offered-ts.lastSubmitted) / dtSec
		errRate := 0.0
		if d := offered - ts.lastSubmitted; d > 0 {
			errRate = float64(errs-ts.lastErrors) / float64(d)
		}
		ts.lastSubmitted, ts.lastErrors = offered, errs

		share := 0.0
		if totalServed > 0 {
			share = float64(o.Served) / float64(totalServed)
		} else if len(s.tstates) > 0 {
			share = 1 / float64(len(s.tstates))
		}
		cost := fleetRate * share
		ts.costPerHour.Set(cost)
		ts.arrivalRate.Set(arrival)
		ts.p99Gauge.Set(o.P99)

		v := o.Variant
		if v >= 0 && v < len(ts.profiles) {
			sp := ts.profiles[v].Speed
			if sp <= 0 {
				sp = 1
			}
			meanSpeedNum += float64(o.Served) * sp
			meanSpeedDen += float64(o.Served)
		}

		tenants = append(tenants, autoscale.TenantSignal{
			Name:           ts.name,
			ArrivalRate:    arrival,
			P99:            o.P99,
			Samples:        o.Samples,
			QueueFrac:      o.QueueFrac,
			ErrorRate:      errRate,
			Variant:        v,
			SLOSeconds:     spec.SLO().Seconds(),
			CostPerHour:    cost,
			MaxCostPerHour: spec.MaxCostPerHour,
			Profiles:       ts.profiles,
		})
	}

	// Capacity estimate: requests per busy-second of one batcher over the
	// tick, normalized to rung 0 by the mix's served-weighted mean speed.
	served, execSec := s.mux.ExecStats()
	if dServed, dExec := served-s.lastServed, execSec-s.lastExecSec; dExec > 0 && dServed > 0 {
		meanSpeed := 1.0
		if meanSpeedDen > 0 && meanSpeedNum > 0 {
			meanSpeed = meanSpeedNum / meanSpeedDen
		}
		s.capEstimate = float64(dServed) / dExec / meanSpeed
	}
	s.lastServed, s.lastExecSec = served, execSec

	return autoscale.JointSignal{
		Tenants:            tenants,
		Replicas:           replicas,
		CapacityPerReplica: s.capEstimate,
		Healthy:            s.healthy,
		SinceScale:         s.sinceScale,
	}
}

// applyLocked actuates one joint decision. The per-tenant decision span
// opens before actuation so the mux-side tenant.set_variant span parents
// under it.
func (s *Scaler) applyLocked(act autoscale.JointAction, sig autoscale.JointSignal) {
	s.healthy = act.Healthy
	s.counts[act.Verb]++
	ctx := context.Background()
	var finish telemetry.FinishFunc
	if act.Verb != autoscale.Hold {
		name := "autoscale.tenant." + act.Verb.String()
		ctx, finish = s.tracer.StartSpan(ctx, name)
	}
	switch act.Verb {
	case autoscale.ScaleOut, autoscale.ScaleIn:
		s.sinceScale = 0
		s.mux.ScaleTo(act.Replicas)
	case autoscale.Degrade, autoscale.Restore:
		s.sinceScale++
		s.mux.SetVariant(ctx, act.Tenant, act.Variant)
		for _, ts := range s.tstates {
			if ts.name != act.Tenant {
				continue
			}
			if act.Verb == autoscale.Degrade {
				ts.degrades.Inc()
				if s.degradedFirst == "" {
					s.degradedFirst = act.Tenant
				}
			} else {
				ts.restores.Inc()
			}
		}
	default:
		s.sinceScale++
	}
	s.verbs[act.Verb].Inc()
	s.ticksC.Inc()
	s.repsG.Set(float64(s.mux.ReplicaCount()))
	s.costG.Set(float64(s.mux.ReplicaCount()) * s.pol.Limits.PricePerReplicaHour)
	if finish != nil {
		finish(
			telemetry.L("tenant", act.Tenant),
			telemetry.L("replicas", act.Replicas),
			telemetry.L("variant", act.Variant),
			telemetry.L("reason", act.Reason),
		)
	}
}

// TenantCost is one tenant's share of the joint bill: attributed dollars
// (by served-request share of the fleet's replica-seconds) and the
// $/million-on-time-requests headline the explore layer reports offline.
type TenantCost struct {
	Name string `json:"name"`
	// Share is the tenant's served fraction of fleet traffic.
	Share float64 `json:"share"`
	// CostUSD is the tenant's attributed slice of the fleet rental bill;
	// CostPerHour its current attributed burn rate.
	CostUSD     float64 `json:"cost_usd"`
	CostPerHour float64 `json:"cost_per_hour"`
	// OnTime counts served requests that beat the tenant's SLO;
	// DollarsPerMillionOnTime = CostUSD / OnTime × 1e6 (0 when nothing
	// was on time).
	OnTime                  int64   `json:"on_time"`
	DollarsPerMillionOnTime float64 `json:"dollars_per_million_on_time"`
	Degrades                int64   `json:"degrades"`
	Restores                int64   `json:"restores"`
}

// JointStatus is the scaler's point-in-time view: verb tallies, the joint
// bill split per tenant, who degraded first, and who degrades next.
type JointStatus struct {
	Ticks     int64 `json:"ticks"`
	Replicas  int   `json:"replicas"`
	ScaleOuts int64 `json:"scale_outs"`
	ScaleIns  int64 `json:"scale_ins"`
	Degrades  int64 `json:"degrades"`
	Restores  int64 `json:"restores"`
	Holds     int64 `json:"holds"`
	// Cost prices the mux's replica-seconds integral at the policy price.
	Cost           float64 `json:"cost_usd"`
	CostPerHour    float64 `json:"cost_per_hour"`
	BudgetPerHour  float64 `json:"budget_per_hour"`
	ReplicaSeconds float64 `json:"replica_seconds"`
	// DegradedFirst is the first tenant the policy degraded ("" = none
	// yet); DegradeOrder is who would degrade next, in policy order.
	DegradedFirst string        `json:"degraded_first,omitempty"`
	DegradeOrder  []string      `json:"degrade_order"`
	Tenants       []TenantCost  `json:"tenants"`
	LastDecision  JointDecision `json:"last_decision"`
}

// Status snapshots the scaler, splitting the fleet bill across tenants by
// served-request share.
func (s *Scaler) Status() JointStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	repSec := s.mux.ReplicaSeconds()
	price := s.pol.Limits.PricePerReplicaHour
	totalCost := repSec / 3600 * price
	replicas := s.mux.ReplicaCount()
	fleetRate := float64(replicas) * price

	var totalServed int64
	rows := s.mux.Stats()
	for _, r := range rows {
		totalServed += r.Served
	}
	tenants := make([]TenantCost, 0, len(rows))
	for _, r := range rows {
		share := 0.0
		if totalServed > 0 {
			share = float64(r.Served) / float64(totalServed)
		} else if len(rows) > 0 {
			share = 1 / float64(len(rows))
		}
		tc := TenantCost{
			Name:        r.Name,
			Share:       share,
			CostUSD:     totalCost * share,
			CostPerHour: fleetRate * share,
			OnTime:      r.OnTime,
			Degrades:    r.Degrades,
			Restores:    r.Restores,
		}
		if r.OnTime > 0 {
			tc.DollarsPerMillionOnTime = tc.CostUSD / float64(r.OnTime) * 1e6
		}
		tenants = append(tenants, tc)
	}
	return JointStatus{
		Ticks:          s.ticks,
		Replicas:       replicas,
		ScaleOuts:      s.counts[autoscale.ScaleOut],
		ScaleIns:       s.counts[autoscale.ScaleIn],
		Degrades:       s.counts[autoscale.Degrade],
		Restores:       s.counts[autoscale.Restore],
		Holds:          s.counts[autoscale.Hold],
		Cost:           totalCost,
		CostPerHour:    fleetRate,
		BudgetPerHour:  s.pol.Limits.BudgetPerHour,
		ReplicaSeconds: repSec,
		DegradedFirst:  s.degradedFirst,
		DegradeOrder:   s.pol.DegradeOrder(s.last.Signal),
		Tenants:        tenants,
		LastDecision:   s.last,
	}
}
