package tenant

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecsArrayAndWrapped(t *testing.T) {
	arr := `[{"name":"a","qps":10},{"name":"b","slo_ms":200}]`
	specs, err := ParseSpecs(strings.NewReader(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "a" || specs[1].SLOMS != 200 {
		t.Fatalf("parsed %+v", specs)
	}

	wrapped := `{"tenants":[{"name":"x","weight":2}]}`
	specs, err = ParseSpecs(strings.NewReader(wrapped))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "x" || specs[0].Weight != 2 {
		t.Fatalf("parsed %+v", specs)
	}

	if _, err := ParseSpecs(strings.NewReader(`{"nope":true}`)); err == nil {
		t.Fatal("expected error for spec file without tenants")
	}
}

func TestRegistryDefaultsAndOrder(t *testing.T) {
	reg, err := NewRegistry([]Spec{{Name: "zeta", QPS: 10}, {Name: "alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("registry order %v, want sorted by name", got)
	}
	z, ok := reg.Get("zeta")
	if !ok {
		t.Fatal("zeta missing")
	}
	if z.SLOMS != 50 || z.Weight != 1 || z.QueueCap != 64 {
		t.Fatalf("defaults not applied: %+v", z)
	}
	if z.Burst != 10 {
		t.Fatalf("burst default = %v, want QPS", z.Burst)
	}
	a, _ := reg.Get("alpha")
	if a.Burst != 0 {
		t.Fatalf("unlimited tenant should not get a burst, got %v", a.Burst)
	}
	if z.SLO() != 50*time.Millisecond {
		t.Fatalf("SLO() = %v", z.SLO())
	}
}

func TestRegistryRejectsDuplicatesAndBadSpecs(t *testing.T) {
	if _, err := NewRegistry([]Spec{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("expected duplicate-name error")
	}
	if _, err := NewRegistry(nil); err == nil {
		t.Fatal("expected empty-registry error")
	}
	if _, err := NewRegistry([]Spec{{Name: ""}}); err == nil {
		t.Fatal("expected unnamed-spec error")
	}
	if _, err := NewRegistry([]Spec{{Name: "a", Ladder: []float64{1.5}}}); err == nil {
		t.Fatal("expected out-of-range ladder error")
	}
	if _, err := NewRegistry([]Spec{{Name: "a", QPS: -1}}); err == nil {
		t.Fatal("expected negative-field error")
	}
}

func TestBucketAdmission(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBucket(10, 2) // 10/s, burst 2

	if !b.allow(now) || !b.allow(now) {
		t.Fatal("burst of 2 should admit two immediately")
	}
	if b.allow(now) {
		t.Fatal("third immediate request should be rejected")
	}
	// 100ms refills exactly one token at 10/s.
	now = now.Add(100 * time.Millisecond)
	if !b.allow(now) {
		t.Fatal("one token should have refilled")
	}
	if b.allow(now) {
		t.Fatal("bucket should be empty again")
	}
	// A long idle period caps at the burst, not the elapsed rate.
	now = now.Add(time.Hour)
	if !b.allow(now) || !b.allow(now) {
		t.Fatal("burst should refill after idle")
	}
	if b.allow(now) {
		t.Fatal("refill must cap at burst")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := newBucket(0, 0)
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if !b.allow(now) {
			t.Fatal("rate 0 means unlimited")
		}
	}
}
