// Package tenant generalizes the serving stack from one model to N: a
// multi-tenant front-end that hosts several pruning ladders — each with
// its own calibrated accuracy proxy, latency SLO, admission quota, and
// budget share — on one shared replica fleet.
//
// The paper prices a single model's cost-accuracy frontier on one
// instance at a time; Perseus and "No DNN Left Behind" (PAPERS.md) show
// the dominant serving-cost win comes from co-locating models on shared
// capacity. This package supplies the three mechanisms co-location needs
// to be safe:
//
//   - Admission quotas: each tenant gets a token bucket (rate = its QPS
//     quota) so one tenant's flood is rejected at its own front door
//     (ErrQuotaExceeded, HTTP 429) instead of consuming shared queue
//     space.
//   - Weighted-fair batching: replicas pick batches by deficit
//     round-robin across the per-tenant backlogs, coalescing only
//     same-tenant requests (each tenant runs its own nets), so a noisy
//     neighbor cannot starve a quiet one of replica time.
//   - Joint placement: a Scaler binds the pure autoscale.JointPolicy to
//     the fleet — which tenant degrades first (largest accuracy-per-
//     dollar slack), which gets freed capacity, per-tenant $/hr
//     enforcement.
//
// The tenant spec format, fairness model and degrade-order semantics are
// documented in docs/MULTITENANT.md.
package tenant

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Spec declares one tenant to the fleet. JSON tags define the spec-file
// format `ccperf loadtest -tenants` and `serve -tenants` accept (a JSON
// array of these objects).
type Spec struct {
	// Name identifies the tenant (required, unique within a registry).
	Name string `json:"name"`
	// Ladder lists the tenant's prune ratios, least pruned first (empty =
	// serving.DefaultLadderRatios). Each tenant's ladder is built as its
	// own variant set — rungs are never shared across tenants.
	Ladder []float64 `json:"ladder,omitempty"`
	// SLOMS is the tenant's p99 latency objective in milliseconds
	// (default 50). On-time accounting and the joint scaler defend it.
	SLOMS float64 `json:"slo_ms,omitempty"`
	// DeadlineMS is the per-request deadline in milliseconds applied at
	// admission when the caller supplies none (0 = no deadline).
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// QPS is the admission quota in requests/second (0 = unlimited).
	// Requests beyond the bucket are rejected with ErrQuotaExceeded.
	QPS float64 `json:"qps,omitempty"`
	// Burst is the token-bucket depth (default max(1, ceil(QPS))).
	Burst float64 `json:"burst,omitempty"`
	// Weight is the tenant's deficit-round-robin share of replica time
	// (default 1): a weight-2 tenant is offered twice the batch quantum
	// of a weight-1 tenant each scheduling round.
	Weight float64 `json:"weight,omitempty"`
	// QueueCap bounds the tenant's private backlog (default 64); overflow
	// is shed with serving.ErrOverloaded.
	QueueCap int `json:"queue_cap,omitempty"`
	// MaxCostPerHour caps the tenant's attributed share of the fleet burn
	// rate (0 = uncapped); the joint scaler degrades a tenant over its
	// cap regardless of fleet health.
	MaxCostPerHour float64 `json:"max_cost_per_hour,omitempty"`
	// OfferedQPS is the open-loop load RunLoad generates for this tenant
	// (0 = QPS, or 20/s when both are unset). Offered > QPS exercises
	// quota rejection — the flooding-tenant scenario.
	OfferedQPS float64 `json:"offered_qps,omitempty"`
	// Images is the tenant's offline batch demand for `ccperf pack`
	// (0 = the command's -images default). Unused by the serving path.
	Images int64 `json:"images,omitempty"`
	// PackDeadlineHours is the tenant's offline completion deadline for
	// `ccperf pack`, in hours (0 = none). Distinct from DeadlineMS, which
	// bounds one online request. Unused by the serving path.
	PackDeadlineHours float64 `json:"pack_deadline_hours,omitempty"`
}

// withDefaults fills the documented defaults on zero fields.
func (s Spec) withDefaults() Spec {
	if len(s.Ladder) == 0 {
		s.Ladder = nil // BuildLadder substitutes serving.DefaultLadderRatios
	}
	if s.SLOMS <= 0 {
		s.SLOMS = 50
	}
	if s.QPS < 0 {
		s.QPS = 0
	}
	if s.Burst <= 0 && s.QPS > 0 {
		s.Burst = s.QPS
		if s.Burst < 1 {
			s.Burst = 1
		}
	}
	if s.Weight <= 0 {
		s.Weight = 1
	}
	if s.QueueCap <= 0 {
		s.QueueCap = 64
	}
	return s
}

// Validate rejects a spec the fleet cannot host.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("tenant: spec needs a name")
	}
	for _, r := range s.Ladder {
		if r < 0 || r > 1 {
			return fmt.Errorf("tenant %s: ladder ratio %v out of [0,1]", s.Name, r)
		}
	}
	if s.QPS < 0 || s.Burst < 0 || s.Weight < 0 || s.SLOMS < 0 ||
		s.DeadlineMS < 0 || s.MaxCostPerHour < 0 || s.OfferedQPS < 0 ||
		s.Images < 0 || s.PackDeadlineHours < 0 {
		return fmt.Errorf("tenant %s: negative spec field", s.Name)
	}
	return nil
}

// SLO returns the latency objective as a duration.
func (s Spec) SLO() time.Duration {
	return time.Duration(s.SLOMS * float64(time.Millisecond))
}

// Deadline returns the per-request deadline offset (0 = none).
func (s Spec) Deadline() time.Duration {
	return time.Duration(s.DeadlineMS * float64(time.Millisecond))
}

// Registry is a validated, defaulted tenant set with stable iteration
// order (sorted by name, so every consumer — scheduler rounds, status
// rows, reports — sees the same deterministic order).
type Registry struct {
	specs  []Spec
	byName map[string]int
}

// NewRegistry validates and defaults the specs. Names must be unique.
func NewRegistry(specs []Spec) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("tenant: registry needs at least one spec")
	}
	r := &Registry{byName: make(map[string]int, len(specs))}
	r.specs = make([]Spec, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		r.specs[i] = s.withDefaults()
	}
	sort.Slice(r.specs, func(i, j int) bool { return r.specs[i].Name < r.specs[j].Name })
	for i, s := range r.specs {
		if _, dup := r.byName[s.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q", s.Name)
		}
		r.byName[s.Name] = i
	}
	return r, nil
}

// Len returns the tenant count.
func (r *Registry) Len() int { return len(r.specs) }

// Specs returns the defaulted specs in name order (shared slice: do not
// mutate).
func (r *Registry) Specs() []Spec { return r.specs }

// Names returns the tenant names in registry (sorted) order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.specs))
	for i, s := range r.specs {
		out[i] = s.Name
	}
	return out
}

// Get returns the named spec and whether it exists.
func (r *Registry) Get(name string) (Spec, bool) {
	i, ok := r.byName[name]
	if !ok {
		return Spec{}, false
	}
	return r.specs[i], true
}

// index returns the registry position of name (-1 when absent).
func (r *Registry) index(name string) int {
	i, ok := r.byName[name]
	if !ok {
		return -1
	}
	return i
}

// ParseSpecs decodes a tenant spec file: a JSON array of Spec objects
// (optionally wrapped as {"tenants": [...]}).
func ParseSpecs(rd io.Reader) ([]Spec, error) {
	raw, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("tenant: reading specs: %w", err)
	}
	var specs []Spec
	if err := json.Unmarshal(raw, &specs); err != nil {
		var wrapped struct {
			Tenants []Spec `json:"tenants"`
		}
		if err2 := json.Unmarshal(raw, &wrapped); err2 != nil || len(wrapped.Tenants) == 0 {
			return nil, fmt.Errorf("tenant: decoding specs: %w", err)
		}
		specs = wrapped.Tenants
	}
	return specs, nil
}

// LoadSpecs reads and parses a tenant spec file.
func LoadSpecs(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSpecs(f)
}
