package tenant

import (
	"sync"
	"time"
)

// bucket is a classic token bucket: rate tokens/second refill up to
// burst, one token per admission. A zero rate means no quota (always
// allow). Time flows in through the caller so tests can drive it
// deterministically.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second (0 = unlimited)
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64) *bucket {
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst}
}

// allow consumes one token if available at now.
func (b *bucket) allow(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
