package tenant

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ccperf/internal/autoscale"
	"ccperf/internal/telemetry"
)

func postInfer(t *testing.T, srv *httptest.Server, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/infer", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHandlerQuota429Accounting drives the HTTP surface of the quota
// test: a capped tenant's overflow maps to 429 Too Many Requests, and
// the per-tenant /gateway/status row carries the rejection count.
func TestHandlerQuota429Accounting(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{
		{Name: "capped", QPS: 1, Burst: 1},
		{Name: "open"},
	}})
	m.Start()
	defer m.Stop()
	srv := httptest.NewServer(Handler(m, nil))
	defer srv.Close()

	var got429 int
	for i := 0; i < 4; i++ {
		resp := postInfer(t, srv, InferRequest{Tenant: "capped", Seed: int64(i)})
		switch resp.StatusCode {
		case http.StatusOK:
			var ir InferResponse
			if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
				t.Fatal(err)
			}
			if ir.Tenant != "capped" || ir.TotalMS <= 0 {
				t.Fatalf("bad infer reply: %+v", ir)
			}
		case http.StatusTooManyRequests:
			got429++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got429 == 0 {
		t.Fatal("burst-1 tenant never got a 429 across 4 instant requests")
	}

	resp, err := http.Get(srv.URL + "/gateway/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Tenants) != 2 {
		t.Fatalf("status has %d tenant rows, want 2", len(status.Tenants))
	}
	byName := map[string]TenantStats{}
	for _, row := range status.Tenants {
		byName[row.Name] = row
	}
	if byName["capped"].Rejected != int64(got429) {
		t.Fatalf("status row counts %d rejections, HTTP saw %d", byName["capped"].Rejected, got429)
	}
	if byName["open"].Rejected != 0 {
		t.Fatalf("open tenant's row polluted: %+v", byName["open"])
	}
	if status.Joint != nil {
		t.Fatal("no scaler attached, joint section should be absent")
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{{Name: "a"}}})
	m.Start()
	defer m.Stop()
	srv := httptest.NewServer(Handler(m, nil))
	defer srv.Close()

	resp := postInfer(t, srv, InferRequest{Tenant: "ghost"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postInfer(t, srv, InferRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing tenant status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postInfer(t, srv, InferRequest{Tenant: "a", Image: []float32{1, 2, 3}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad image length status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	r, err := http.Get(srv.URL + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /infer status %d, want 405", r.StatusCode)
	}
	r.Body.Close()
}

func TestHandlerStatusIncludesJoint(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{{Name: "a", Ladder: []float64{0, 0.9}}}})
	sc, err := NewScaler(m, ScalerConfig{
		Policy:   autoscale.JointPolicy{Limits: autoscale.Limits{MinReplicas: 1, MaxReplicas: 4, PricePerReplicaHour: 1}},
		Profiles: map[string][]autoscale.Profile{"a": ProfilesFromLadder(m.Ladder("a"), nil)},
		Interval: time.Hour, // ticked manually, never by the clock
		Registry: telemetry.NewRegistry(),
		Tracer:   telemetry.NewTracer(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()
	sc.Tick()

	srv := httptest.NewServer(Handler(m, sc))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/gateway/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Joint == nil || status.Joint.Ticks != 1 {
		t.Fatalf("joint section missing or unticked: %+v", status.Joint)
	}
	if len(status.Joint.Tenants) != 1 || status.Joint.Tenants[0].Name != "a" {
		t.Fatalf("joint tenant rows: %+v", status.Joint.Tenants)
	}
}
