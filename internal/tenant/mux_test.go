package tenant

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccperf/internal/serving"
	"ccperf/internal/stats"
	"ccperf/internal/telemetry"
	"ccperf/internal/tensor"
)

// testMux builds a mux with an isolated registry/tracer and a short demo
// ladder per tenant (override via cfg.BuildLadder).
func testMux(t testing.TB, cfg Config) *Mux {
	t.Helper()
	if cfg.BuildLadder == nil {
		cfg.BuildLadder = func(ratios []float64) ([]serving.Variant, error) {
			if len(ratios) == 0 {
				ratios = []float64{0, 0.9}
			}
			return serving.DemoLadder(ratios)
		}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.NewTracer(256)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testTenantImage(seed int64) *tensor.Tensor {
	return serving.SyntheticImage(serving.TinyShape.C, serving.TinyShape.H, serving.TinyShape.W, seed)
}

func TestMuxConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for config without specs")
	}
	if _, err := New(Config{Specs: []Spec{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("expected duplicate-tenant error")
	}
}

func TestInferAsServesEachTenantItsOwnLadder(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{
		{Name: "a", Ladder: []float64{0, 0.9}},
		{Name: "b", Ladder: []float64{0, 0.5, 0.9}},
	}})
	m.Start()
	defer m.Stop()

	ra := m.InferAs(context.Background(), "a", testTenantImage(1), time.Time{})
	if ra.Err != nil {
		t.Fatal(ra.Err)
	}
	if ra.Variant != 0 || ra.Accuracy <= 0 {
		t.Fatalf("tenant a: variant=%d accuracy=%v", ra.Variant, ra.Accuracy)
	}
	if got := len(m.Ladder("b")); got != 3 {
		t.Fatalf("tenant b ladder length %d, want 3", got)
	}
	rb := m.InferAs(context.Background(), "b", testTenantImage(2), time.Time{})
	if rb.Err != nil {
		t.Fatal(rb.Err)
	}
	sa := m.TenantStats("a")
	sb := m.TenantStats("b")
	if sa.Served != 1 || sb.Served != 1 {
		t.Fatalf("served a=%d b=%d, want 1 each", sa.Served, sb.Served)
	}
}

func TestSubmitAsUnknownTenant(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{{Name: "a"}}})
	m.Start()
	defer m.Stop()
	if _, err := m.SubmitAs(context.Background(), "ghost", testTenantImage(1), time.Time{}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
}

// TestQuotaRejectionAccounting is the quota-admission rejection test: a
// tenant over its token bucket gets ErrQuotaExceeded, the rejection lands
// in that tenant's 429 ledger (Rejected), and never leaks into another
// tenant's accounting or the error outcomes.
func TestQuotaRejectionAccounting(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{
		{Name: "capped", QPS: 5, Burst: 5},
		{Name: "open"},
	}})
	m.Start()
	defer m.Stop()

	var rejected, admitted int
	for i := 0; i < 20; i++ {
		ch, err := m.SubmitAs(context.Background(), "capped", testTenantImage(int64(i)), time.Time{})
		switch {
		case errors.Is(err, ErrQuotaExceeded):
			rejected++
		case err != nil:
			t.Fatalf("unexpected submit error: %v", err)
		default:
			admitted++
			<-ch
		}
	}
	if rejected == 0 {
		t.Fatal("20 instant submits against burst 5 should hit the quota")
	}
	if admitted == 0 {
		t.Fatal("the burst should admit some requests")
	}
	st := m.TenantStats("capped")
	if st.Rejected != int64(rejected) {
		t.Fatalf("tenant ledger counts %d rejections, loadgen saw %d", st.Rejected, rejected)
	}
	if st.Submitted != 20 || st.Admitted != int64(admitted) {
		t.Fatalf("submitted=%d admitted=%d, want 20/%d", st.Submitted, st.Admitted, admitted)
	}
	if st.Shed != 0 || st.Expired != 0 || st.Faulted != 0 {
		t.Fatalf("quota rejections must not count as errors: %+v", st)
	}
	if other := m.TenantStats("open"); other.Rejected != 0 || other.Submitted != 0 {
		t.Fatalf("open tenant's ledger polluted: %+v", other)
	}
}

// TestFairnessUnderFlood is the isolation property test: one tenant
// keeps its private backlog saturated while a quiet tenant trickles
// requests; deficit-round-robin must keep the quiet tenant's latency
// inside its SLO and its error rate at zero. Run under -race in CI —
// the SLO below is calibrated to race-detector overhead (a starved
// tenant would see multi-second waits either way).
func TestFairnessUnderFlood(t *testing.T) {
	const quietSLO = 500 * time.Millisecond
	m := testMux(t, Config{
		Specs: []Spec{
			{Name: "noisy", Ladder: []float64{0}, QueueCap: 64},
			{Name: "quiet", Ladder: []float64{0}, SLOMS: 500},
		},
		Replicas: 1,
		MaxBatch: 2,
	})
	m.Start()
	defer m.Stop()

	stop := make(chan struct{})
	var floodSubmitted atomic.Int64
	var flooders sync.WaitGroup
	for w := 0; w < 2; w++ {
		flooders.Add(1)
		go func(w int) {
			defer flooders.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ch, err := m.SubmitAs(context.Background(), "noisy", testTenantImage(i), time.Time{})
				if err == nil {
					floodSubmitted.Add(1)
					go func() { <-ch }()
				}
				// Paced so the backlog stays full without the submit loops
				// starving the replica goroutines of CPU under -race.
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// Give the flood a head start so the noisy backlog is saturated
	// before the quiet tenant shows up.
	time.Sleep(20 * time.Millisecond)

	const quietN = 50
	latencies := make([]float64, 0, quietN)
	quietErrs := 0
	for i := 0; i < quietN; i++ {
		resp := m.InferAs(context.Background(), "quiet", testTenantImage(int64(i)), time.Time{})
		if resp.Err != nil {
			quietErrs++
			continue
		}
		latencies = append(latencies, resp.Total.Seconds())
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	flooders.Wait()

	if floodSubmitted.Load() == 0 {
		t.Fatal("flood never got a request in; test is vacuous")
	}
	if quietErrs > 0 {
		t.Fatalf("%d/%d quiet-tenant requests errored under flood, want 0", quietErrs, quietN)
	}
	p99 := stats.Percentile(latencies, 0.99)
	if p99 > quietSLO.Seconds() {
		t.Fatalf("quiet tenant p99 %.1fms exceeds %.0fms SLO under flood",
			p99*1000, quietSLO.Seconds()*1000)
	}
	// The flood must have actually contended for the whole window: the
	// noisy tenant out-served the quiet one, yet the quiet one stayed fast.
	if st := m.TenantStats("noisy"); st.Served <= int64(quietN) {
		t.Fatalf("noisy tenant served only %d requests; flood too weak to prove fairness", st.Served)
	}
}

func TestWeightedQuantumFavorsHeavyTenant(t *testing.T) {
	m := testMux(t, Config{
		Specs: []Spec{
			{Name: "heavy", Ladder: []float64{0}, Weight: 4},
			{Name: "light", Ladder: []float64{0}, Weight: 1},
		},
		Replicas: 1,
		MaxBatch: 2,
	})
	// Prefill both backlogs before the replica starts: with both queues
	// non-empty for the whole measured window, every DRR round contends
	// and the weight ratio is the only variable — no arrival pacing to
	// race against (open-loop submitters leave backlogs empty on fast
	// machines, where the scheduler rightly serves whoever has work).
	const prefill = 60
	for _, name := range []string{"heavy", "light"} {
		for i := int64(0); i < prefill; i++ {
			ch, err := m.SubmitAs(context.Background(), name, testTenantImage(i), time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			go func() { <-ch }()
		}
	}
	m.Start()
	defer m.Stop()

	// Snapshot mid-drain: served ≤ 30 < prefill on each side, so both
	// backlogs were non-empty for every round counted. Stop then drains
	// the remainder (which would equalize the totals — hence the
	// snapshot, not a post-Stop read). Light is read first so any serves
	// between the two reads can only widen the asserted gap.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if m.TenantStats("heavy").Served+m.TenantStats("light").Served >= 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("served only %d of %d prefilled requests in 20s",
				m.TenantStats("heavy").Served+m.TenantStats("light").Served, 2*prefill)
		}
		time.Sleep(time.Millisecond)
	}
	light := m.TenantStats("light").Served
	heavy := m.TenantStats("heavy").Served
	if heavy <= light {
		t.Fatalf("weight-4 tenant served %d ≤ weight-1 tenant's %d under contention", heavy, light)
	}
}

func TestSetVariantCountsDegradesAndRestores(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{{Name: "a", Ladder: []float64{0, 0.5, 0.9}}}})
	m.Start()
	defer m.Stop()

	ctx := context.Background()
	if _, err := m.SetVariant(ctx, "a", 2); err != nil {
		t.Fatal(err)
	}
	if v := m.CurrentVariant("a"); v != 2 {
		t.Fatalf("variant = %d, want 2", v)
	}
	if _, err := m.SetVariant(ctx, "a", 0); err != nil {
		t.Fatal(err)
	}
	st := m.TenantStats("a")
	if st.Degrades != 2 || st.Restores != 2 {
		t.Fatalf("degrades=%d restores=%d, want 2/2 (two rungs each way)", st.Degrades, st.Restores)
	}
	if v, err := m.SetVariant(ctx, "a", 99); err != nil || v != 2 {
		t.Fatalf("SetVariant clamps to the ladder bottom: got %d, %v", v, err)
	}
	if _, err := m.SetVariant(ctx, "ghost", 0); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
}

func TestScaleToBounds(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{{Name: "a"}}, Replicas: 2})
	m.Start()
	defer m.Stop()
	if n, err := m.ScaleTo(4); err != nil || n != 4 {
		t.Fatalf("ScaleTo(4) = %d, %v", n, err)
	}
	if n, err := m.ScaleTo(1); err != nil || n != 1 {
		t.Fatalf("ScaleTo(1) = %d, %v", n, err)
	}
	if n, err := m.ScaleTo(0); err != nil || n != 1 {
		t.Fatalf("ScaleTo clamps at one replica: got %d, %v", n, err)
	}
	// The fleet still serves after scaling both ways.
	if resp := m.InferAs(context.Background(), "a", testTenantImage(1), time.Time{}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
}

func TestStageStatsKeyedByTenant(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{{Name: "a"}, {Name: "b"}}})
	m.Start()
	defer m.Stop()
	for i := 0; i < 4; i++ {
		if resp := m.InferAs(context.Background(), "a", testTenantImage(int64(i)), time.Time{}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	st := m.StageStatsByTenant()
	if st["a"].NNForward.Count == 0 || st["a"].QueueWait.Count == 0 {
		t.Fatalf("tenant a stages empty: %+v", st["a"])
	}
	if st["b"].NNForward.Count != 0 {
		t.Fatalf("idle tenant b has forward samples: %+v", st["b"])
	}
}

func TestObserveDrainsWindow(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{{Name: "a"}}})
	m.Start()
	defer m.Stop()
	for i := 0; i < 3; i++ {
		if resp := m.InferAs(context.Background(), "a", testTenantImage(int64(i)), time.Time{}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	o, err := m.Observe("a")
	if err != nil {
		t.Fatal(err)
	}
	if o.Samples != 3 || o.P99 <= 0 {
		t.Fatalf("observation %+v, want 3 samples with positive p99", o)
	}
	o2, _ := m.Observe("a")
	if o2.Samples != 0 {
		t.Fatalf("window not drained: %d samples remain", o2.Samples)
	}
	if _, err := m.Observe("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
}

func TestStopDrainsBacklog(t *testing.T) {
	m := testMux(t, Config{Specs: []Spec{{Name: "a", QueueCap: 128}}, Replicas: 1, MaxBatch: 2})
	m.Start()

	chans := make([]<-chan serving.Response, 0, 32)
	for i := 0; i < 32; i++ {
		ch, err := m.SubmitAs(context.Background(), "a", testTenantImage(int64(i)), time.Time{})
		if err != nil {
			continue
		}
		chans = append(chans, ch)
	}
	m.Stop()
	for _, ch := range chans {
		resp := <-ch
		if resp.Err != nil && !errors.Is(resp.Err, serving.ErrStopped) {
			t.Fatalf("drained request failed with %v", resp.Err)
		}
	}
	if _, err := m.SubmitAs(context.Background(), "a", testTenantImage(0), time.Time{}); !errors.Is(err, serving.ErrStopped) {
		t.Fatalf("submit after stop = %v, want ErrStopped", err)
	}
}
