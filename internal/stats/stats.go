// Package stats holds the order-statistics helpers shared by the fleet
// simulator (internal/cluster) and the serving gateway's control window
// (internal/serving). Both layers summarize latency samples the same way
// — nearest-rank percentiles over a sorted copy — so simulated and served
// tails are directly comparable, and both need the degenerate cases
// (empty, single sample) handled without panicking.
package stats

import "sort"

// Percentile returns the nearest-rank q-quantile of xs (q in [0,1],
// clamped). The input is not modified. An empty slice yields 0; a single
// sample yields that sample for every q.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return atQuantile(s, q)
}

// Summary returns (p50, p95, p99, max) of xs in one pass over a single
// sorted copy — the quartet every latency report in this repo prints.
// An empty input yields all zeros.
func Summary(xs []float64) (p50, p95, p99, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return atQuantile(s, 0.50), atQuantile(s, 0.95), atQuantile(s, 0.99), s[len(s)-1]
}

// atQuantile indexes an already-sorted slice by nearest rank.
func atQuantile(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return sorted[int(q*float64(len(sorted)-1))]
}
