package stats

import (
	"math"
	"testing"
)

func TestPercentileEmptyAndSingle(t *testing.T) {
	if got := Percentile(nil, 0.99); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
	if got := Percentile([]float64{}, 0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := Percentile([]float64{7.5}, q); got != 7.5 {
			t.Fatalf("single-sample q=%v = %v, want 7.5", q, got)
		}
	}
	p50, p95, p99, max := Summary(nil)
	if p50 != 0 || p95 != 0 || p99 != 0 || max != 0 {
		t.Fatalf("empty Summary = %v %v %v %v, want zeros", p50, p95, p99, max)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// 0,10,...,90: the indices the cluster tests have asserted since PR 2.
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i * 10)
	}
	if got := Percentile(xs, 0.50); got != 40 {
		t.Fatalf("p50 = %v, want 40", got)
	}
	if got := Percentile(xs, 0.95); got != 80 {
		t.Fatalf("p95 = %v, want 80", got)
	}
	if got := Percentile(xs, 1); got != 90 {
		t.Fatalf("p100 = %v, want 90", got)
	}
}

func TestPercentileClampsAndSortsCopy(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, -1); got != 1 {
		t.Fatalf("q<0 = %v, want min 1", got)
	}
	if got := Percentile(xs, 2); got != 3 {
		t.Fatalf("q>1 = %v, want max 3", got)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummaryMatchesPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	p50, p95, p99, max := Summary(xs)
	for _, c := range []struct {
		q    float64
		got  float64
		name string
	}{{0.50, p50, "p50"}, {0.95, p95, "p95"}, {0.99, p99, "p99"}} {
		if want := Percentile(xs, c.q); math.Abs(c.got-want) > 1e-12 {
			t.Fatalf("%s = %v, want %v", c.name, c.got, want)
		}
	}
	if max != 9 {
		t.Fatalf("max = %v, want 9", max)
	}
}
