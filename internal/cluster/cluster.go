// Package cluster is a discrete-event simulator of a CNN inference service
// running on a rented fleet of cloud GPU instances. Where the analytical
// model of internal/cloud answers "how long does a fixed workload take",
// cluster answers the operational questions behind the paper's motivating
// scenario: with jobs arriving over the day, what latency do requests see,
// how utilized is the fleet, and what does the rental cost?
//
// Jobs (groups of images) arrive at given times, queue, and are dispatched
// to the instance that can finish them earliest (list scheduling). Each
// instance serves one job at a time in saturated batches, with service
// times supplied by the same cloud.Perf the analytical model uses — so a
// degree of pruning changes service rates here exactly as it changes
// Equation 2 there.
package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"

	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/prune"
	"ccperf/internal/telemetry"
)

// Job is one unit of arriving work.
type Job struct {
	ID      int
	Arrival float64 // seconds from simulation start
	Images  int64
	// Deadline is the absolute completion deadline in seconds; 0 means
	// no deadline.
	Deadline float64
}

// JobStat records one job's outcome.
type JobStat struct {
	Job      Job
	Start    float64
	Finish   float64
	Instance int // index into the fleet
	Missed   bool
}

// Wait returns queueing delay.
func (s JobStat) Wait() float64 { return s.Start - s.Job.Arrival }

// Response returns arrival-to-finish latency.
func (s JobStat) Response() float64 { return s.Finish - s.Job.Arrival }

// Config parameterizes a simulation run.
type Config struct {
	// Fleet is the rented instance set (billed for the whole horizon).
	Fleet []*cloud.Instance
	// Perf supplies batch times (typically engine.Predictor.Perf at a
	// fixed degree of pruning — see ConfigFor).
	Perf cloud.Perf
	// Horizon is the billing horizon in seconds; 0 bills until the last
	// job finishes.
	Horizon float64
}

// ConfigFor builds a simulation Config whose service times come from the
// given predictor at a fixed degree of pruning — pass an engine.Cache and
// the fleet simulation reuses the same memoized batch-time evaluations as
// the exploration and serving layers.
func ConfigFor(pred engine.Predictor, d prune.Degree, fleet []*cloud.Instance, horizon float64) Config {
	return Config{Fleet: fleet, Perf: pred.Perf(d, 0), Horizon: horizon}
}

// Result summarizes a run.
type Result struct {
	Jobs        []JobStat
	Makespan    float64 // finish time of the last job
	Horizon     float64 // billed duration
	Cost        float64 // fleet rental over the horizon, per-second pro-rated
	Utilization []float64
	Misses      int

	P50Wait, P95Wait, P99Wait, MaxWait                 float64
	P50Response, P95Response, P99Response, MaxResponse float64
}

// Run simulates the jobs on the fleet.
func Run(cfg Config, jobs []Job) (*Result, error) {
	if len(cfg.Fleet) == 0 {
		return nil, fmt.Errorf("cluster: empty fleet")
	}
	if cfg.Perf == nil {
		return nil, fmt.Errorf("cluster: nil Perf")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("cluster: no jobs")
	}
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Arrival < ordered[b].Arrival })

	// Precompute per-instance service rates.
	type inst struct {
		typ       *cloud.Instance
		freeAt    float64
		busy      float64
		batch     int
		batchTime float64
	}
	fleet := make([]inst, len(cfg.Fleet))
	for i, it := range cfg.Fleet {
		b := cfg.Perf.MaxBatch(it)
		if b <= 0 {
			return nil, fmt.Errorf("cluster: instance %s has non-positive batch", it.Name)
		}
		bt := cfg.Perf.BatchTime(it, b)
		if bt <= 0 {
			return nil, fmt.Errorf("cluster: instance %s has non-positive batch time", it.Name)
		}
		fleet[i] = inst{typ: it, batch: b, batchTime: bt}
	}

	res := &Result{Jobs: make([]JobStat, 0, len(ordered))}
	for _, j := range ordered {
		if j.Images <= 0 {
			return nil, fmt.Errorf("cluster: job %d has non-positive images", j.ID)
		}
		if j.Arrival < 0 {
			return nil, fmt.Errorf("cluster: job %d has negative arrival", j.ID)
		}
		// Earliest-finish-time dispatch.
		best := -1
		bestFinish := math.Inf(1)
		var bestStart, bestService float64
		for i := range fleet {
			service := math.Ceil(float64(j.Images)/float64(fleet[i].batch)) * fleet[i].batchTime
			start := math.Max(j.Arrival, fleet[i].freeAt)
			finish := start + service
			if finish < bestFinish {
				best, bestFinish, bestStart, bestService = i, finish, start, service
			}
		}
		fleet[best].freeAt = bestFinish
		fleet[best].busy += bestService
		stat := JobStat{Job: j, Start: bestStart, Finish: bestFinish, Instance: best}
		if j.Deadline > 0 && bestFinish > j.Deadline {
			stat.Missed = true
			res.Misses++
		}
		res.Jobs = append(res.Jobs, stat)
		if bestFinish > res.Makespan {
			res.Makespan = bestFinish
		}
	}

	res.Horizon = cfg.Horizon
	if res.Horizon <= 0 {
		res.Horizon = res.Makespan
	}
	billed := math.Ceil(res.Horizon)
	for i := range fleet {
		res.Cost += billed * fleet[i].typ.PricePerSecond()
		res.Utilization = append(res.Utilization, fleet[i].busy/res.Horizon)
	}

	waits := make([]float64, len(res.Jobs))
	resps := make([]float64, len(res.Jobs))
	for i, s := range res.Jobs {
		waits[i] = s.Wait()
		resps[i] = s.Response()
	}
	res.P50Wait, res.P95Wait, res.P99Wait, res.MaxWait = percentiles(waits)
	res.P50Response, res.P95Response, res.P99Response, res.MaxResponse = percentiles(resps)
	recordRun(res, "cluster.run")
	return res, nil
}

// recordRun publishes a simulation's outcome: per-job wait/response
// distributions in simulated seconds, job and deadline-miss counts, and
// one span carrying the headline stats.
func recordRun(res *Result, spanName string) {
	reg := telemetry.Default
	reg.Counter("cluster.jobs_dispatched").Add(int64(len(res.Jobs)))
	reg.Counter("cluster.deadline_misses").Add(int64(res.Misses))
	wait := reg.Histogram("cluster.job_wait_seconds", nil)
	resp := reg.Histogram("cluster.job_response_seconds", nil)
	for _, s := range res.Jobs {
		wait.Observe(s.Wait())
		resp.Observe(s.Response())
	}
	_, finish := telemetry.StartSpan(context.Background(), spanName)
	finish(
		telemetry.L("jobs", len(res.Jobs)),
		telemetry.L("misses", res.Misses),
		telemetry.L("utilization", res.AverageUtilization()),
	)
}

// percentiles returns (p50, p95, p99, max) of xs. p99 is the SLO
// percentile the serving gateway targets, reported here too so simulated
// and served tail latencies are directly comparable.
func percentiles(xs []float64) (p50, p95, p99, max float64) {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		idx := int(q * float64(len(s)-1))
		return s[idx]
	}
	return at(0.50), at(0.95), at(0.99), s[len(s)-1]
}

// JobsFromWindows converts a per-window request trace into jobs: each
// window's images arrive as chunked jobs spread uniformly through the
// window, each with a deadline of windowSeconds·slack after arrival.
func JobsFromWindows(windows []int64, windowSeconds float64, chunk int64, slack float64) []Job {
	if chunk < 1 {
		chunk = 1
	}
	var jobs []Job
	id := 0
	for w, images := range windows {
		if images <= 0 {
			continue
		}
		n := (images + chunk - 1) / chunk
		for k := int64(0); k < n; k++ {
			size := chunk
			if k == n-1 {
				size = images - chunk*(n-1)
			}
			arrival := float64(w)*windowSeconds + windowSeconds*float64(k)/float64(n)
			j := Job{ID: id, Arrival: arrival, Images: size}
			if slack > 0 {
				j.Deadline = arrival + windowSeconds*slack
			}
			jobs = append(jobs, j)
			id++
		}
	}
	return jobs
}

// AverageUtilization returns the fleet-wide mean utilization.
func (r *Result) AverageUtilization() float64 {
	if len(r.Utilization) == 0 {
		return 0
	}
	var s float64
	for _, u := range r.Utilization {
		s += u
	}
	return s / float64(len(r.Utilization))
}
