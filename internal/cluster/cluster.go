// Package cluster is a discrete-event simulator of a CNN inference service
// running on a rented fleet of cloud GPU instances. Where the analytical
// model of internal/cloud answers "how long does a fixed workload take",
// cluster answers the operational questions behind the paper's motivating
// scenario: with jobs arriving over the day, what latency do requests see,
// how utilized is the fleet, and what does the rental cost?
//
// Jobs (groups of images) arrive at given times, queue, and are dispatched
// to the instance that can finish them earliest (list scheduling). Each
// instance serves one job at a time in saturated batches, with service
// times supplied by the same cloud.Perf the analytical model uses — so a
// degree of pruning changes service rates here exactly as it changes
// Equation 2 there.
//
// The fleet does not have to be perfect. Config.Faults injects a seeded
// internal/fault schedule: a Preempt event revokes an instance mid-run
// (in-flight work is interrupted at batch granularity and the remaining
// images requeue for a bounded number of retries on the survivors), and a
// Slow event stretches an instance's batch times over a window. Billing,
// deadline misses, wasted work and goodput all account for the faults —
// the cost-availability corner the paper's Eq. 3–4 fleet model leaves
// open. See docs/RESILIENCE.md.
package cluster

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/fault"
	"ccperf/internal/prune"
	"ccperf/internal/stats"
	"ccperf/internal/telemetry"
)

// JobKind selects the workload class of a job — which of the Config's
// Perf models supplies its service rates.
type JobKind int

const (
	// KindInference is the paper's workload: Images counts inference
	// requests, served in saturated batches via Config.Perf.
	KindInference JobKind = iota
	// KindTraining is a training job: Images counts sample-visits
	// (samples × epochs), consumed one optimizer step per batch via
	// Config.TrainPerf (typically train.CostModel.Perf).
	KindTraining
)

func (k JobKind) String() string {
	switch k {
	case KindInference:
		return "inference"
	case KindTraining:
		return "training"
	default:
		return fmt.Sprintf("JobKind(%d)", int(k))
	}
}

// Job is one unit of arriving work.
type Job struct {
	ID      int
	Arrival float64 // seconds from simulation start
	// Images is the job's size: inference requests for KindInference,
	// sample-visits (samples × epochs) for KindTraining.
	Images int64
	// Deadline is the absolute completion deadline in seconds; 0 means
	// no deadline.
	Deadline float64
	// Kind selects the workload class; the zero value is KindInference,
	// so existing inference-only call sites are unchanged.
	Kind JobKind
}

// JobStat records one job's outcome.
type JobStat struct {
	Job      Job
	Start    float64 // first dispatch time
	Finish   float64 // final completion (or the moment the job failed)
	Instance int     // index into the fleet (the final attempt's instance)
	Missed   bool
	// Attempts is the number of dispatches the job consumed (1 = clean
	// first run). Failed marks a job whose retry budget ran out, or that
	// found no surviving instance; its images beyond the completed
	// batches were never processed.
	Attempts int
	Failed   bool
}

// Wait returns queueing delay.
func (s JobStat) Wait() float64 { return s.Start - s.Job.Arrival }

// Response returns arrival-to-finish latency.
func (s JobStat) Response() float64 { return s.Finish - s.Job.Arrival }

// Config parameterizes a simulation run.
type Config struct {
	// Fleet is the rented instance set (billed for the whole horizon,
	// or until revocation — see Result.Cost).
	Fleet []*cloud.Instance
	// Perf supplies batch times for inference jobs (typically
	// engine.Predictor.Perf at a fixed degree of pruning — see ConfigFor).
	Perf cloud.Perf
	// TrainPerf supplies step times for KindTraining jobs (typically
	// train.CostModel.Perf). It may be nil when no training jobs are
	// submitted; a training job with a nil TrainPerf is a config error.
	TrainPerf cloud.Perf
	// Horizon is the billing horizon in seconds; 0 bills until the last
	// job finishes.
	Horizon float64
	// Faults is the seeded failure scenario applied during the run
	// (nil = the perfect fleet of the paper's cost model). Preempt and
	// Slow events apply; Crash and Errors are serving-side kinds and are
	// ignored here.
	Faults *fault.Schedule
	// RetryBudget bounds re-dispatches per job after an interruption
	// (0 = the default of 2; negative = no retries).
	RetryBudget int
}

// ConfigFor builds a simulation Config whose service times come from the
// given predictor at a fixed degree of pruning — pass an engine.Cache and
// the fleet simulation reuses the same memoized batch-time evaluations as
// the exploration and serving layers.
func ConfigFor(pred engine.Predictor, d prune.Degree, fleet []*cloud.Instance, horizon float64) Config {
	return Config{Fleet: fleet, Perf: pred.Perf(d, 0), Horizon: horizon}
}

// Result summarizes a run.
type Result struct {
	Jobs        []JobStat
	Makespan    float64 // finish time of the last job
	Horizon     float64 // billed duration
	Cost        float64 // fleet rental, per-second pro-rated, revoked instances billed to revocation
	Utilization []float64
	Misses      int

	// Fault accounting. Preemptions counts instances revoked inside the
	// billed horizon; Retries counts post-interruption re-dispatches;
	// FailedJobs counts jobs that exhausted the retry budget or found no
	// surviving instance (they also count as Misses when they carry a
	// deadline). WastedSeconds is busy time spent on batches that were
	// lost to a revocation. MissesAfterRetry isolates the deadline
	// misses of jobs that needed more than one attempt — the paper's
	// two-axis analysis priced none of this.
	Preemptions      int
	Retries          int
	FailedJobs       int
	WastedSeconds    float64
	MissesAfterRetry int

	// FinishedImages counts images in completed batches; Goodput is
	// FinishedImages per billed second — the denominator that makes
	// "cost per finished image" honest under faults. OnTimeImages narrows
	// that to jobs that also met their deadline: with a fixed rental
	// horizon a revoked instance *refunds* part of the bill, so raw
	// cost-per-image can fall even as the service degrades — the on-time
	// denominator is what a preemption reliably worsens.
	FinishedImages int64
	OnTimeImages   int64
	Goodput        float64

	P50Wait, P95Wait, P99Wait, MaxWait                 float64
	P50Response, P95Response, P99Response, MaxResponse float64
}

// CostPerMillionImages prices the run per 10⁶ finished images (+Inf when
// nothing finished) — the headline number a preemption moves.
func (r *Result) CostPerMillionImages() float64 {
	if r.FinishedImages <= 0 {
		return math.Inf(1)
	}
	return r.Cost / float64(r.FinishedImages) * 1e6
}

// CostPerMillionOnTime prices the run per 10⁶ images served within their
// job's deadline (+Inf when none were).
func (r *Result) CostPerMillionOnTime() float64 {
	if r.OnTimeImages <= 0 {
		return math.Inf(1)
	}
	return r.Cost / float64(r.OnTimeImages) * 1e6
}

// inst is the per-instance event-loop state. batch/batchTime are indexed
// by JobKind; the training slots stay zero when Config.TrainPerf is nil.
type inst struct {
	typ       *cloud.Instance
	freeAt    float64
	busy      float64
	batch     [2]int
	batchTime [2]float64
	preemptAt float64 // +Inf when never revoked
	revoked   bool    // revocation reached during the run
}

// pendingJob is one queued (re)dispatch.
type pendingJob struct {
	job        Job
	ready      float64 // arrival, or the revocation time that requeued it
	remaining  int64
	attempt    int     // 1 = first dispatch
	firstStart float64 // NaN until the first dispatch lands
}

// jobQueue orders pending work by (ready, ID, attempt) — a deterministic
// event queue, so a seeded chaos run replays bit-for-bit.
type jobQueue []*pendingJob

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if q[a].ready != q[b].ready {
		return q[a].ready < q[b].ready
	}
	if q[a].job.ID != q[b].job.ID {
		return q[a].job.ID < q[b].job.ID
	}
	return q[a].attempt < q[b].attempt
}
func (q jobQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*pendingJob)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Run simulates the jobs on the fleet. The context cancels the dispatch
// loop: a cancellation mid-simulation returns promptly with an error
// wrapping ctx.Err() and no result.
func Run(ctx context.Context, cfg Config, jobs []Job) (*Result, error) {
	if len(cfg.Fleet) == 0 {
		return nil, fmt.Errorf("cluster: empty fleet")
	}
	if cfg.Perf == nil {
		return nil, fmt.Errorf("cluster: nil Perf")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("cluster: no jobs")
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	retryBudget := cfg.RetryBudget
	if retryBudget == 0 {
		retryBudget = 2
	}
	if retryBudget < 0 {
		retryBudget = 0
	}

	pending := make(jobQueue, 0, len(jobs))
	hasTraining := false
	for _, j := range jobs {
		if j.Images <= 0 {
			return nil, fmt.Errorf("cluster: job %d has non-positive images", j.ID)
		}
		if j.Arrival < 0 {
			return nil, fmt.Errorf("cluster: job %d has negative arrival", j.ID)
		}
		switch j.Kind {
		case KindInference:
		case KindTraining:
			hasTraining = true
		default:
			return nil, fmt.Errorf("cluster: job %d has unknown kind %d", j.ID, j.Kind)
		}
		pending = append(pending, &pendingJob{job: j, ready: j.Arrival, remaining: j.Images, attempt: 1, firstStart: math.NaN()})
	}
	heap.Init(&pending)
	if hasTraining && cfg.TrainPerf == nil {
		return nil, fmt.Errorf("cluster: training jobs submitted but Config.TrainPerf is nil")
	}

	// Precompute per-instance, per-kind service rates and revocation times.
	perfs := [2]cloud.Perf{KindInference: cfg.Perf, KindTraining: cfg.TrainPerf}
	fleet := make([]inst, len(cfg.Fleet))
	for i, it := range cfg.Fleet {
		in := inst{typ: it, preemptAt: cfg.Faults.PreemptAt(i)}
		for k, perf := range perfs {
			if perf == nil || (JobKind(k) == KindTraining && !hasTraining) {
				continue
			}
			b := perf.MaxBatch(it)
			if b <= 0 {
				return nil, fmt.Errorf("cluster: instance %s has non-positive %s batch", it.Name, JobKind(k))
			}
			bt := perf.BatchTime(it, b)
			if bt <= 0 {
				return nil, fmt.Errorf("cluster: instance %s has non-positive %s batch time", it.Name, JobKind(k))
			}
			in.batch[k], in.batchTime[k] = b, bt
		}
		fleet[i] = in
	}

	res := &Result{Jobs: make([]JobStat, 0, len(jobs))}
	dispatched := 0
	for pending.Len() > 0 {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: cancelled after %d of %d dispatches: %w",
				dispatched, dispatched+pending.Len(), ctx.Err())
		default:
		}
		it := heap.Pop(&pending).(*pendingJob)
		dispatched++

		// Earliest-finish dispatch across surviving instances. The
		// scheduler is not clairvoyant: the estimate ignores future
		// faults, but an instance already gone by the job's would-be
		// start is excluded.
		best := -1
		bestFinish := math.Inf(1)
		var bestStart float64
		kind := it.job.Kind
		for i := range fleet {
			if fleet[i].revoked {
				continue
			}
			start := math.Max(it.ready, fleet[i].freeAt)
			if start >= fleet[i].preemptAt {
				continue
			}
			service := math.Ceil(float64(it.remaining)/float64(fleet[i].batch[kind])) * fleet[i].batchTime[kind]
			finish := start + service
			if finish < bestFinish {
				best, bestFinish, bestStart = i, finish, start
			}
		}
		if best < 0 {
			res.Jobs = append(res.Jobs, failStat(it, it.ready, res))
			continue
		}
		if math.IsNaN(it.firstStart) {
			it.firstStart = bestStart
		}

		// Execute batch by batch: Slow windows stretch each batch (factor
		// sampled at batch start), and a revocation inside a batch loses
		// that batch's work and requeues the remainder.
		in := &fleet[best]
		t := bestStart
		interrupted := false
		for batches := 0; it.remaining > 0; batches++ {
			// A single giant job can span millions of batches; re-check
			// cancellation periodically so Run stays prompt mid-job too.
			if batches&8191 == 8191 {
				select {
				case <-ctx.Done():
					return nil, fmt.Errorf("cluster: cancelled after %d of %d dispatches: %w",
						dispatched, dispatched+pending.Len(), ctx.Err())
				default:
				}
			}
			if t >= in.preemptAt {
				interrupted = true
				break
			}
			dur := in.batchTime[kind] * cfg.Faults.SlowFactor(best, t)
			if t+dur > in.preemptAt {
				res.WastedSeconds += in.preemptAt - t
				in.busy += in.preemptAt - t
				t = in.preemptAt
				interrupted = true
				break
			}
			t += dur
			in.busy += dur
			done := min64(int64(in.batch[kind]), it.remaining)
			it.remaining -= done
			res.FinishedImages += done
		}

		if interrupted {
			in.revoked = true
			in.freeAt = math.Inf(1)
			if t > res.Makespan {
				res.Makespan = t
			}
			if it.attempt <= retryBudget {
				res.Retries++
				it.ready = in.preemptAt
				it.attempt++
				heap.Push(&pending, it)
			} else {
				res.Jobs = append(res.Jobs, failStat(it, in.preemptAt, res))
			}
			continue
		}

		in.freeAt = t
		stat := JobStat{Job: it.job, Start: it.firstStart, Finish: t, Instance: best, Attempts: it.attempt}
		if it.job.Deadline > 0 && t > it.job.Deadline {
			stat.Missed = true
			res.Misses++
			if it.attempt > 1 {
				res.MissesAfterRetry++
			}
		} else {
			res.OnTimeImages += it.job.Images
		}
		res.Jobs = append(res.Jobs, stat)
		if t > res.Makespan {
			res.Makespan = t
		}
	}
	sort.Slice(res.Jobs, func(a, b int) bool { return res.Jobs[a].Job.ID < res.Jobs[b].Job.ID })

	res.Horizon = cfg.Horizon
	if res.Horizon <= 0 {
		res.Horizon = res.Makespan
	}
	// Billing: a revoked instance is billed only up to its revocation —
	// the one mercy of the spot market.
	for i := range fleet {
		end := res.Horizon
		if fleet[i].preemptAt < end {
			end = fleet[i].preemptAt
			res.Preemptions++
		}
		res.Cost += math.Ceil(end) * fleet[i].typ.PricePerSecond()
		if end > 0 {
			res.Utilization = append(res.Utilization, fleet[i].busy/end)
		} else {
			res.Utilization = append(res.Utilization, 0)
		}
	}
	if res.Horizon > 0 {
		res.Goodput = float64(res.FinishedImages) / res.Horizon
	}

	// Latency percentiles cover completed jobs; a failed job has no
	// completion to measure.
	var waits, resps []float64
	for _, s := range res.Jobs {
		if s.Failed {
			continue
		}
		waits = append(waits, s.Wait())
		resps = append(resps, s.Response())
	}
	res.P50Wait, res.P95Wait, res.P99Wait, res.MaxWait = stats.Summary(waits)
	res.P50Response, res.P95Response, res.P99Response, res.MaxResponse = stats.Summary(resps)
	recordRun(res, "cluster.run")
	return res, nil
}

// failStat finalizes a job that ran out of instances or retries, updating
// the run-level failure tallies.
func failStat(it *pendingJob, at float64, res *Result) JobStat {
	start := it.firstStart
	if math.IsNaN(start) {
		start = at
	}
	res.FailedJobs++
	stat := JobStat{Job: it.job, Start: start, Finish: at, Instance: -1, Attempts: it.attempt, Failed: true}
	if it.job.Deadline > 0 {
		stat.Missed = true
		res.Misses++
		if it.attempt > 1 {
			res.MissesAfterRetry++
		}
	}
	return stat
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// recordRun publishes a simulation's outcome: per-job wait/response
// distributions in simulated seconds, job, deadline-miss and fault
// counts, and one span carrying the headline stats.
func recordRun(res *Result, spanName string) {
	reg := telemetry.Default
	reg.Counter("cluster.jobs_dispatched").Add(int64(len(res.Jobs)))
	reg.Counter("cluster.deadline_misses").Add(int64(res.Misses))
	if res.Preemptions > 0 || res.Retries > 0 || res.FailedJobs > 0 {
		reg.Counter("cluster.preemptions").Add(int64(res.Preemptions))
		reg.Counter("cluster.retries").Add(int64(res.Retries))
		reg.Counter("cluster.failed_jobs").Add(int64(res.FailedJobs))
		reg.Counter("fault.preemptions_applied").Add(int64(res.Preemptions))
		reg.Histogram("cluster.wasted_seconds", nil).Observe(res.WastedSeconds)
	}
	wait := reg.Histogram("cluster.job_wait_seconds", nil)
	resp := reg.Histogram("cluster.job_response_seconds", nil)
	for _, s := range res.Jobs {
		if s.Failed {
			continue
		}
		wait.Observe(s.Wait())
		resp.Observe(s.Response())
	}
	_, finish := telemetry.StartSpan(context.Background(), spanName)
	finish(
		telemetry.L("jobs", len(res.Jobs)),
		telemetry.L("misses", res.Misses),
		telemetry.L("preemptions", res.Preemptions),
		telemetry.L("retries", res.Retries),
		telemetry.L("utilization", res.AverageUtilization()),
	)
}

// percentiles returns (p50, p95, p99, max) of xs — a thin wrapper over
// the shared stats helper, kept for the autoscaler. Safe on empty input.
func percentiles(xs []float64) (p50, p95, p99, max float64) {
	return stats.Summary(xs)
}

// JobsFromWindows converts a per-window request trace into jobs: each
// window's images arrive as chunked jobs spread uniformly through the
// window, each with a deadline of windowSeconds·slack after arrival.
func JobsFromWindows(windows []int64, windowSeconds float64, chunk int64, slack float64) []Job {
	if chunk < 1 {
		chunk = 1
	}
	var jobs []Job
	id := 0
	for w, images := range windows {
		if images <= 0 {
			continue
		}
		n := (images + chunk - 1) / chunk
		for k := int64(0); k < n; k++ {
			size := chunk
			if k == n-1 {
				size = images - chunk*(n-1)
			}
			arrival := float64(w)*windowSeconds + windowSeconds*float64(k)/float64(n)
			j := Job{ID: id, Arrival: arrival, Images: size}
			if slack > 0 {
				j.Deadline = arrival + windowSeconds*slack
			}
			jobs = append(jobs, j)
			id++
		}
	}
	return jobs
}

// AverageUtilization returns the fleet-wide mean utilization.
func (r *Result) AverageUtilization() float64 {
	if len(r.Utilization) == 0 {
		return 0
	}
	var s float64
	for _, u := range r.Utilization {
		s += u
	}
	return s / float64(len(r.Utilization))
}
