package cluster

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ccperf/internal/cloud"
	"ccperf/internal/fault"
)

// twoXL builds a 2-instance p2.xlarge fleet (stubPerf: 100-image batches,
// 10 s each).
func twoXL(t *testing.T) []*cloud.Instance {
	t.Helper()
	i := xl(t)
	return []*cloud.Instance{i, i}
}

func TestPreemptionInterruptsRequeuesAndBills(t *testing.T) {
	// Two 1000-image jobs (10 batches = 100 s each) saturate the
	// 2-instance fleet: job 0 on instance 0, job 1 on instance 1.
	// Instance 0 is revoked at t=35, mid-way through its 4th batch
	// (30–40): 300 of job 0's images are done, 5 s of batch work is
	// lost, and the remaining 700 retry on instance 1 — which is busy
	// with job 1 until t=100, so the retry runs 100→170.
	jobs := []Job{
		{ID: 0, Arrival: 0, Images: 1000, Deadline: 102},
		{ID: 1, Arrival: 0, Images: 1000, Deadline: 102},
	}
	faults := &fault.Schedule{Events: []fault.Event{{Kind: fault.Preempt, Target: 0, At: 35}}}
	res, err := Run(context.Background(), Config{Fleet: twoXL(t), Perf: stubPerf{}, Faults: faults}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Jobs[0]
	if s.Failed || s.Attempts != 2 || s.Instance != 1 {
		t.Fatalf("stat = %+v, want 2 attempts finishing on instance 1", s)
	}
	if s.Finish != 170 {
		t.Fatalf("finish = %v, want 170", s.Finish)
	}
	if res.Preemptions != 1 || res.Retries != 1 || res.FailedJobs != 0 {
		t.Fatalf("preemptions=%d retries=%d failed=%d", res.Preemptions, res.Retries, res.FailedJobs)
	}
	if math.Abs(res.WastedSeconds-5) > 1e-9 {
		t.Fatalf("wasted = %v, want 5", res.WastedSeconds)
	}
	if res.FinishedImages != 2000 {
		t.Fatalf("finished images = %d", res.FinishedImages)
	}
	// Job 0 misses its deadline, so only job 1's images count as on-time.
	if res.OnTimeImages != 1000 {
		t.Fatalf("on-time images = %d, want 1000", res.OnTimeImages)
	}
	// Deadline 102: the fault-free run finishes both jobs at 100; the
	// retry pushes job 0 to 170 — a miss attributable to the preemption.
	if res.Misses != 1 || res.MissesAfterRetry != 1 {
		t.Fatalf("misses=%d after-retry=%d, want 1/1", res.Misses, res.MissesAfterRetry)
	}
	// Billing: the dead instance pays only to revocation (35 s), the
	// survivor for the whole makespan horizon (170 s).
	wantCost := (35.0 + 170.0) * 0.9 / 3600
	if math.Abs(res.Cost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v", res.Cost, wantCost)
	}
	// The revoked instance was busy its whole short life.
	if math.Abs(res.Utilization[0]-1) > 1e-9 {
		t.Fatalf("revoked-instance utilization = %v, want 1", res.Utilization[0])
	}

	// Versus the fault-free baseline: same images finished, but the
	// survivor's extended rental outweighs the dead instance's refund —
	// cost per finished image rises, and a deadline miss appears.
	base, err := Run(context.Background(), Config{Fleet: twoXL(t), Perf: stubPerf{}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if base.Misses != 0 || base.Preemptions != 0 {
		t.Fatalf("baseline misses=%d preemptions=%d", base.Misses, base.Preemptions)
	}
	if res.CostPerMillionImages() <= base.CostPerMillionImages() {
		t.Fatalf("preemption should raise cost per finished image: %v vs %v",
			res.CostPerMillionImages(), base.CostPerMillionImages())
	}
	if base.OnTimeImages != 2000 || res.CostPerMillionOnTime() <= base.CostPerMillionOnTime() {
		t.Fatalf("preemption should raise cost per on-time image: %v vs %v (base on-time %d)",
			res.CostPerMillionOnTime(), base.CostPerMillionOnTime(), base.OnTimeImages)
	}
	if res.Goodput >= base.Goodput {
		t.Fatalf("preemption should cut goodput: %v vs %v", res.Goodput, base.Goodput)
	}
}

func TestRetryBudgetExhaustionFailsJob(t *testing.T) {
	// Single instance revoked 5 s in: the first batch is lost, and with
	// no survivors every retry fails to place until the budget runs out.
	jobs := []Job{{ID: 0, Arrival: 0, Images: 1000, Deadline: 200}}
	faults := &fault.Schedule{Events: []fault.Event{{Kind: fault.Preempt, Target: 0, At: 5}}}
	res, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{xl(t)}, Perf: stubPerf{}, Faults: faults}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Jobs[0]
	if !s.Failed || !s.Missed {
		t.Fatalf("stat = %+v, want failed + missed", s)
	}
	if res.FailedJobs != 1 || res.Retries != 1 {
		t.Fatalf("failed=%d retries=%d, want 1 requeue then failure", res.FailedJobs, res.Retries)
	}
	if res.FinishedImages != 0 || !math.IsInf(res.CostPerMillionImages(), 1) {
		t.Fatalf("finished=%d cost/image=%v", res.FinishedImages, res.CostPerMillionImages())
	}
	if math.Abs(res.WastedSeconds-5) > 1e-9 {
		t.Fatalf("wasted = %v", res.WastedSeconds)
	}

	// A negative RetryBudget disables retries entirely.
	res, err = Run(context.Background(), Config{
		Fleet: []*cloud.Instance{xl(t)}, Perf: stubPerf{}, Faults: faults, RetryBudget: -1,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 || res.FailedJobs != 1 {
		t.Fatalf("budget<0: retries=%d failed=%d", res.Retries, res.FailedJobs)
	}
}

func TestSlowdownStretchesBatches(t *testing.T) {
	// A 2× straggler window over the whole run doubles the single batch.
	jobs := []Job{{ID: 0, Arrival: 0, Images: 100}}
	faults := &fault.Schedule{Events: []fault.Event{{Kind: fault.Slow, Target: 0, At: 0, Duration: 1000, Factor: 2}}}
	res, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{xl(t)}, Perf: stubPerf{}, Faults: faults}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Finish != 20 {
		t.Fatalf("finish = %v, want 20 (2× slowdown)", res.Jobs[0].Finish)
	}
	if res.Preemptions != 0 || res.Retries != 0 {
		t.Fatalf("slowdown alone should not preempt: %+v", res)
	}
}

func TestChaosRunBitForBitReproducible(t *testing.T) {
	faults, err := fault.ParseSchedule("preempt@0:35,slow@1:40+30x2,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{ID: 0, Arrival: 0, Images: 1000, Deadline: 150},
		{ID: 1, Arrival: 5, Images: 400, Deadline: 120},
		{ID: 2, Arrival: 30, Images: 250},
	}
	run := func() *Result {
		res, err := Run(context.Background(), Config{Fleet: twoXL(t), Perf: stubPerf{}, Faults: faults}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded chaos runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Preemptions != 1 || a.Retries == 0 {
		t.Fatalf("scenario should exercise preemption+retry: %+v", a)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{Fleet: []*cloud.Instance{xl(t)}, Perf: stubPerf{}},
		[]Job{{ID: 0, Images: 100}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunCancelMidSimulationReturnsPromptly(t *testing.T) {
	before := runtime.NumGoroutine()
	// One colossal job (400M batches ≈ seconds of simulation) so the
	// cancel lands mid-dispatch, inside the batch loop.
	jobs := []Job{{ID: 0, Arrival: 0, Images: 40_000_000_000}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Config{Fleet: []*cloud.Instance{xl(t)}, Perf: stubPerf{}}, jobs)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res=%v), want context.Canceled", err, res)
	}
	if res != nil {
		t.Fatal("cancelled run must not return a partial Result as success")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to land", elapsed)
	}
	// The simulator is single-goroutine: cancellation must leave nothing
	// behind.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 { // +1 for the cancel goroutine racing to exit
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after cancelled Run", before, runtime.NumGoroutine())
}

func TestPercentilesDegenerateInputs(t *testing.T) {
	// The helper behind Result percentiles must tolerate empty and
	// single-sample inputs (a future caller with all-failed jobs).
	p50, p95, p99, max := percentiles(nil)
	if p50 != 0 || p95 != 0 || p99 != 0 || max != 0 {
		t.Fatalf("empty percentiles = %v %v %v %v", p50, p95, p99, max)
	}
	p50, _, p99, max = percentiles([]float64{3})
	if p50 != 3 || p99 != 3 || max != 3 {
		t.Fatalf("single-sample percentiles = %v %v %v", p50, p99, max)
	}
}
