package cluster

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"ccperf/internal/cloud"
)

// stubPerf serves batches of 100 images in 10 s per GPU count.
type stubPerf struct{}

func (stubPerf) BatchTime(it *cloud.Instance, b int) float64 { return 10 / float64(it.GPUs) }
func (stubPerf) MaxBatch(it *cloud.Instance) int             { return 100 * it.GPUs }

func xl(t *testing.T) *cloud.Instance {
	t.Helper()
	i, err := cloud.ByName("p2.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func TestRunValidation(t *testing.T) {
	i := xl(t)
	jobs := []Job{{ID: 0, Arrival: 0, Images: 100}}
	if _, err := Run(context.Background(), Config{Perf: stubPerf{}}, jobs); err == nil {
		t.Fatal("expected error for empty fleet")
	}
	if _, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i}}, jobs); err == nil {
		t.Fatal("expected error for nil perf")
	}
	if _, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}}, nil); err == nil {
		t.Fatal("expected error for no jobs")
	}
	if _, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}}, []Job{{Images: 0}}); err == nil {
		t.Fatal("expected error for empty job")
	}
	if _, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}}, []Job{{Arrival: -1, Images: 1}}); err == nil {
		t.Fatal("expected error for negative arrival")
	}
}

func TestSingleInstanceSequential(t *testing.T) {
	i := xl(t)
	jobs := []Job{
		{ID: 0, Arrival: 0, Images: 100},  // 1 batch → 10 s
		{ID: 1, Arrival: 0, Images: 250},  // 3 batches → 30 s
		{ID: 2, Arrival: 50, Images: 100}, // arrives after queue drains
	}
	res, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Job 0: 0–10; job 1: 10–40; job 2: 50–60.
	if res.Jobs[0].Finish != 10 || res.Jobs[1].Start != 10 || res.Jobs[1].Finish != 40 {
		t.Fatalf("schedule = %+v", res.Jobs[:2])
	}
	if res.Jobs[2].Start != 50 || res.Jobs[2].Finish != 60 {
		t.Fatalf("job2 = %+v", res.Jobs[2])
	}
	if res.Makespan != 60 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	if res.Jobs[1].Wait() != 10 || res.Jobs[2].Wait() != 0 {
		t.Fatal("waits wrong")
	}
	// Utilization: busy 50 s of 60 s horizon.
	if math.Abs(res.Utilization[0]-50.0/60) > 1e-9 {
		t.Fatalf("utilization = %v", res.Utilization[0])
	}
	// Cost: 60 s of p2.xlarge.
	want := 60.0 * 0.9 / 3600
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", res.Cost, want)
	}
}

func TestEarliestFinishDispatchPrefersFasterInstance(t *testing.T) {
	slow := xl(t)
	fast, err := cloud.ByName("p2.8xlarge") // 8× rate under stubPerf
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{ID: 0, Arrival: 0, Images: 800}}
	res, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{slow, fast}, Perf: stubPerf{}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Instance != 1 {
		t.Fatalf("dispatched to %d, want the fast instance", res.Jobs[0].Instance)
	}
	// 800 images = 1 batch of 800 on 8 GPUs → 1.25 s.
	if math.Abs(res.Jobs[0].Finish-1.25) > 1e-9 {
		t.Fatalf("finish = %v", res.Jobs[0].Finish)
	}
}

func TestParallelismAcrossFleet(t *testing.T) {
	i := xl(t)
	jobs := []Job{
		{ID: 0, Arrival: 0, Images: 100},
		{ID: 1, Arrival: 0, Images: 100},
	}
	res, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i, i}, Perf: stubPerf{}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Both run concurrently → makespan 10, not 20.
	if res.Makespan != 10 {
		t.Fatalf("makespan = %v, want 10", res.Makespan)
	}
	if res.Jobs[0].Instance == res.Jobs[1].Instance {
		t.Fatal("jobs should spread across the fleet")
	}
}

func TestDeadlinesAndMisses(t *testing.T) {
	i := xl(t)
	jobs := []Job{
		{ID: 0, Arrival: 0, Images: 100, Deadline: 5},   // needs 10 s → miss
		{ID: 1, Arrival: 0, Images: 100, Deadline: 100}, // queued 10–20 → ok
	}
	res, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 1 || !res.Jobs[0].Missed || res.Jobs[1].Missed {
		t.Fatalf("misses = %d, stats %+v", res.Misses, res.Jobs)
	}
}

func TestHorizonBilling(t *testing.T) {
	i := xl(t)
	jobs := []Job{{ID: 0, Arrival: 0, Images: 100}}
	res, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}, Horizon: 3600}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-0.9) > 1e-9 {
		t.Fatalf("1-hour rental = %v, want 0.9", res.Cost)
	}
	if math.Abs(res.Utilization[0]-10.0/3600) > 1e-9 {
		t.Fatalf("utilization = %v", res.Utilization[0])
	}
}

func TestPercentileStats(t *testing.T) {
	i := xl(t)
	// Ten identical jobs on one instance: waits 0,10,20,...,90.
	var jobs []Job
	for k := 0; k < 10; k++ {
		jobs = append(jobs, Job{ID: k, Arrival: 0, Images: 100})
	}
	res, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWait != 90 {
		t.Fatalf("max wait = %v", res.MaxWait)
	}
	if res.P50Wait != 40 { // index 4 of sorted 0..90
		t.Fatalf("p50 wait = %v", res.P50Wait)
	}
	if res.P95Wait != 80 { // index int(0.95·9)=8
		t.Fatalf("p95 wait = %v", res.P95Wait)
	}
	if res.P99Wait != 80 { // index int(0.99·9)=8
		t.Fatalf("p99 wait = %v", res.P99Wait)
	}
	if res.P99Response < res.P95Response || res.P99Response > res.MaxResponse {
		t.Fatalf("p99 response %v outside [p95 %v, max %v]", res.P99Response, res.P95Response, res.MaxResponse)
	}
	if res.AverageUtilization() <= 0 {
		t.Fatal("utilization")
	}
}

func TestJobsFromWindows(t *testing.T) {
	jobs := JobsFromWindows([]int64{250, 0, 100}, 3600, 100, 0.5)
	// Window 0: 3 jobs (100,100,50); window 2: 1 job of 100.
	if len(jobs) != 4 {
		t.Fatalf("%d jobs", len(jobs))
	}
	var total int64
	for _, j := range jobs {
		total += j.Images
	}
	if total != 350 {
		t.Fatalf("total images = %d", total)
	}
	if jobs[3].Arrival != 2*3600 {
		t.Fatalf("window-2 arrival = %v", jobs[3].Arrival)
	}
	if jobs[0].Deadline != jobs[0].Arrival+1800 {
		t.Fatalf("deadline = %v", jobs[0].Deadline)
	}
	// Arrivals within a window spread uniformly and stay inside it.
	if jobs[1].Arrival <= jobs[0].Arrival || jobs[2].Arrival >= 3600 {
		t.Fatalf("spread = %v %v %v", jobs[0].Arrival, jobs[1].Arrival, jobs[2].Arrival)
	}
}

func TestJobsFromWindowsZeroCountWindows(t *testing.T) {
	// All-zero trace produces no jobs at all.
	if jobs := JobsFromWindows([]int64{0, 0, 0}, 3600, 100, 0.5); len(jobs) != 0 {
		t.Fatalf("all-zero windows produced %d jobs", len(jobs))
	}
	// Zero windows are skipped but don't shift later windows' arrivals.
	jobs := JobsFromWindows([]int64{0, 50}, 60, 100, 0.5)
	if len(jobs) != 1 {
		t.Fatalf("%d jobs", len(jobs))
	}
	if jobs[0].Arrival != 60 {
		t.Fatalf("arrival = %v, want window-1 start 60", jobs[0].Arrival)
	}
	if jobs[0].ID != 0 {
		t.Fatalf("job IDs must stay dense, got first ID %d", jobs[0].ID)
	}
}

func TestJobsFromWindowsChunkLargerThanWindow(t *testing.T) {
	// Chunk exceeds each window's volume: one job per window carrying the
	// whole window, arriving at the window start.
	jobs := JobsFromWindows([]int64{30, 70}, 10, 1000, 0.5)
	if len(jobs) != 2 {
		t.Fatalf("%d jobs, want 2", len(jobs))
	}
	if jobs[0].Images != 30 || jobs[1].Images != 70 {
		t.Fatalf("images = %d,%d", jobs[0].Images, jobs[1].Images)
	}
	if jobs[0].Arrival != 0 || jobs[1].Arrival != 10 {
		t.Fatalf("arrivals = %v,%v", jobs[0].Arrival, jobs[1].Arrival)
	}
}

func TestJobsFromWindowsZeroSlackMeansNoDeadline(t *testing.T) {
	jobs := JobsFromWindows([]int64{100}, 3600, 50, 0)
	if len(jobs) != 2 {
		t.Fatalf("%d jobs", len(jobs))
	}
	for _, j := range jobs {
		if j.Deadline != 0 {
			t.Fatalf("slack=0 should leave deadline unset, got %v", j.Deadline)
		}
	}
	// Non-positive chunk falls back to 1 image per job.
	jobs = JobsFromWindows([]int64{3}, 60, 0, 0)
	if len(jobs) != 3 {
		t.Fatalf("chunk=0: %d jobs, want 3 single-image jobs", len(jobs))
	}
	for _, j := range jobs {
		if j.Images != 1 {
			t.Fatalf("chunk=0 job images = %d", j.Images)
		}
	}
}

// Property: adding an instance never increases makespan or any job's wait
// beyond the single-instance case.
func TestMoreInstancesNeverHurtProperty(t *testing.T) {
	i := xl(t)
	f := func(sizes [6]uint16) bool {
		var jobs []Job
		for k, s := range sizes {
			jobs = append(jobs, Job{ID: k, Arrival: float64(k * 3), Images: int64(s%500) + 1})
		}
		one, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}}, jobs)
		if err != nil {
			return false
		}
		two, err := Run(context.Background(), Config{Fleet: []*cloud.Instance{i, i}, Perf: stubPerf{}}, jobs)
		if err != nil {
			return false
		}
		return two.Makespan <= one.Makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// trainStubPerf models optimizer steps: batch 50 sample-visits, 5 s each.
type trainStubPerf struct{}

func (trainStubPerf) BatchTime(it *cloud.Instance, b int) float64 { return 5 }
func (trainStubPerf) MaxBatch(it *cloud.Instance) int             { return 50 }

func TestTrainingJobsUseTrainPerf(t *testing.T) {
	i := xl(t)
	jobs := []Job{
		{ID: 0, Arrival: 0, Images: 100, Kind: KindTraining},  // 2 steps → 10 s
		{ID: 1, Arrival: 10, Images: 100},                     // inference: 1 batch → 10 s
		{ID: 2, Arrival: 20, Images: 150, Kind: KindTraining}, // 3 steps → 15 s
	}
	cfg := Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}, TrainPerf: trainStubPerf{}}
	res, err := Run(context.Background(), cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential on one instance: training 0–10, inference 10–20,
	// training 20–35 — each job priced by its own kind's rates.
	if res.Jobs[0].Finish != 10 || res.Jobs[1].Finish != 20 || res.Jobs[2].Finish != 35 {
		t.Fatalf("schedule = %+v", res.Jobs)
	}
	if res.FinishedImages != 350 {
		t.Fatalf("FinishedImages = %d, want 350", res.FinishedImages)
	}
}

func TestTrainingDeadlinePlanning(t *testing.T) {
	// A training job with a deadline: the simulator reports the miss the
	// same way it does for inference.
	i := xl(t)
	cfg := Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}, TrainPerf: trainStubPerf{}}
	jobs := []Job{{ID: 0, Images: 500, Kind: KindTraining, Deadline: 40}} // 10 steps → 50 s > 40
	res, err := Run(context.Background(), cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 1 || !res.Jobs[0].Missed {
		t.Fatalf("expected a deadline miss, got %+v", res.Jobs[0])
	}
	if res.Makespan != 50 {
		t.Fatalf("Makespan = %g, want 50", res.Makespan)
	}
}

func TestTrainingJobsRequireTrainPerf(t *testing.T) {
	i := xl(t)
	cfg := Config{Fleet: []*cloud.Instance{i}, Perf: stubPerf{}}
	if _, err := Run(context.Background(), cfg, []Job{{Images: 10, Kind: KindTraining}}); err == nil {
		t.Fatal("training job without TrainPerf must be rejected")
	}
	if _, err := Run(context.Background(), cfg, []Job{{Images: 10, Kind: JobKind(7)}}); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
	// Inference-only jobs never touch TrainPerf even when set to a
	// broken implementation.
	cfg.TrainPerf = brokenPerf{}
	if _, err := Run(context.Background(), cfg, []Job{{Images: 10}}); err != nil {
		t.Fatal(err)
	}
}

type brokenPerf struct{}

func (brokenPerf) BatchTime(it *cloud.Instance, b int) float64 { return 0 }
func (brokenPerf) MaxBatch(it *cloud.Instance) int             { return 0 }
