package cluster

import (
	"context"
	"fmt"
	"math"

	"ccperf/internal/cloud"
	"ccperf/internal/telemetry"
)

// Predictor selects how the autoscaler estimates a window's load.
type Predictor int

// Predictors.
const (
	// Oracle sizes each window from its true arrival count (an upper
	// bound on what any predictor can achieve).
	Oracle Predictor = iota
	// Reactive sizes window w from window w−1's arrivals — the classic
	// lagging autoscaler, which under-provisions at burst onset.
	Reactive
)

// String names the predictor.
func (p Predictor) String() string {
	switch p {
	case Oracle:
		return "oracle"
	case Reactive:
		return "reactive"
	default:
		return fmt.Sprintf("predictor(%d)", int(p))
	}
}

// AutoscaleConfig parameterizes RunAutoscaled. The fleet is homogeneous;
// the instance count changes at window boundaries.
type AutoscaleConfig struct {
	Instance      InstanceSpec
	Min, Max      int
	TargetUtil    float64 // sizing headroom, e.g. 0.7
	BootDelay     float64 // seconds before a newly started instance serves
	WindowSeconds float64
	Predictor     Predictor
}

// InstanceSpec is the homogeneous instance type plus its service rates,
// captured once from a cloud.Perf.
type InstanceSpec struct {
	Name           string
	PricePerSecond float64
	Batch          int
	BatchTime      float64
}

// Rate returns sustained images/second.
func (s InstanceSpec) Rate() float64 { return float64(s.Batch) / s.BatchTime }

// AutoscaleResult extends Result with the per-window fleet sizes.
type AutoscaleResult struct {
	Result
	Active []int // instances on, per window
}

// RunAutoscaled simulates per-window jobs on a fleet whose size is chosen
// each window as ⌈rate_needed / (instanceRate · TargetUtil)⌉, clamped to
// [Min, Max]. Newly started instances serve only after BootDelay. Billing
// charges each instance for the windows it is on.
func RunAutoscaled(cfg AutoscaleConfig, windows []int64, chunk int64, slack float64) (*AutoscaleResult, error) {
	if cfg.Min < 1 || cfg.Max < cfg.Min {
		return nil, fmt.Errorf("cluster: bad autoscale bounds [%d,%d]", cfg.Min, cfg.Max)
	}
	if cfg.TargetUtil <= 0 || cfg.TargetUtil > 1 {
		return nil, fmt.Errorf("cluster: target utilization %v out of (0,1]", cfg.TargetUtil)
	}
	if cfg.WindowSeconds <= 0 {
		return nil, fmt.Errorf("cluster: non-positive window length")
	}
	if cfg.Instance.Batch <= 0 || cfg.Instance.BatchTime <= 0 {
		return nil, fmt.Errorf("cluster: bad instance spec %+v", cfg.Instance)
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("cluster: no windows")
	}

	_, finishRun := telemetry.StartSpan(context.Background(), "cluster.autoscale")
	defer finishRun(
		telemetry.L("predictor", cfg.Predictor.String()),
		telemetry.L("windows", len(windows)),
	)
	reg := telemetry.Default
	scaleUps := reg.Counter("autoscale.scale_up_events")
	scaleDowns := reg.Counter("autoscale.scale_down_events")
	added := reg.Counter("autoscale.instances_added")
	removed := reg.Counter("autoscale.instances_removed")
	loadError := reg.Histogram("autoscale.load_error_pct", loadErrorBuckets)

	// Fleet sizing per window. Each decision is published: scale events
	// with the instance delta, and the predictor's per-window load error
	// as |predicted−actual|/actual percent (actual 0 with a non-zero
	// prediction counts as 100% error).
	active := make([]int, len(windows))
	for w := range windows {
		load := windows[w]
		if cfg.Predictor == Reactive {
			if w == 0 {
				load = 0
			} else {
				load = windows[w-1]
			}
		}
		actual := windows[w]
		switch {
		case actual > 0:
			loadError.Observe(math.Abs(float64(load-actual)) / float64(actual) * 100)
		case load > 0:
			loadError.Observe(100)
		default:
			loadError.Observe(0)
		}
		needRate := float64(load) / cfg.WindowSeconds
		n := int(math.Ceil(needRate / (cfg.Instance.Rate() * cfg.TargetUtil)))
		if n < cfg.Min {
			n = cfg.Min
		}
		if n > cfg.Max {
			n = cfg.Max
		}
		active[w] = n
		prev := cfg.Min
		if w > 0 {
			prev = active[w-1]
		}
		switch {
		case n > prev:
			scaleUps.Inc()
			added.Add(int64(n - prev))
		case n < prev:
			scaleDowns.Inc()
			removed.Add(int64(prev - n))
		}
	}
	peak := 0
	for _, n := range active {
		if n > peak {
			peak = n
		}
	}
	reg.Gauge("autoscale.peak_active").Set(float64(peak))

	jobs := JobsFromWindows(windows, cfg.WindowSeconds, chunk, slack)
	res := &AutoscaleResult{Active: active}
	res.Jobs = make([]JobStat, 0, len(jobs))

	// Per-instance-slot state: slot i is usable in window w iff
	// i < active[w]; a slot freshly turned on becomes available BootDelay
	// into the window.
	freeAt := make([]float64, cfg.Max)
	busy := make([]float64, cfg.Max)
	usableFrom := func(slot, w int) (float64, bool) {
		if slot >= active[w] {
			return 0, false
		}
		start := float64(w) * cfg.WindowSeconds
		if w == 0 || slot >= active[w-1] {
			return start + cfg.BootDelay, true
		}
		return start, true
	}

	for _, j := range jobs {
		w := int(j.Arrival / cfg.WindowSeconds)
		if w >= len(windows) {
			w = len(windows) - 1
		}
		service := math.Ceil(float64(j.Images)/float64(cfg.Instance.Batch)) * cfg.Instance.BatchTime
		best := -1
		bestFinish := math.Inf(1)
		var bestStart float64
		for slot := 0; slot < cfg.Max; slot++ {
			avail, ok := usableFrom(slot, w)
			if !ok {
				continue
			}
			start := math.Max(math.Max(j.Arrival, freeAt[slot]), avail)
			finish := start + service
			if finish < bestFinish {
				best, bestFinish, bestStart = slot, finish, start
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("cluster: window %d has no active instances", w)
		}
		freeAt[best] = bestFinish
		busy[best] += service
		stat := JobStat{Job: j, Start: bestStart, Finish: bestFinish, Instance: best}
		if j.Deadline > 0 && bestFinish > j.Deadline {
			stat.Missed = true
			res.Misses++
		}
		res.Jobs = append(res.Jobs, stat)
		if bestFinish > res.Makespan {
			res.Makespan = bestFinish
		}
	}

	// Billing: each active instance-window.
	res.Horizon = float64(len(windows)) * cfg.WindowSeconds
	for _, n := range active {
		res.Cost += math.Ceil(cfg.WindowSeconds) * cfg.Instance.PricePerSecond * float64(n)
	}
	var totalOn float64
	for _, n := range active {
		totalOn += float64(n) * cfg.WindowSeconds
	}
	var totalBusy float64
	for _, b := range busy {
		totalBusy += b
	}
	if totalOn > 0 {
		res.Utilization = []float64{totalBusy / totalOn}
	}

	waits := make([]float64, len(res.Jobs))
	resps := make([]float64, len(res.Jobs))
	for i, s := range res.Jobs {
		waits[i] = s.Wait()
		resps[i] = s.Response()
	}
	res.P50Wait, res.P95Wait, res.P99Wait, res.MaxWait = percentiles(waits)
	res.P50Response, res.P95Response, res.P99Response, res.MaxResponse = percentiles(resps)
	recordRun(&res.Result, "cluster.autoscale.dispatch")
	return res, nil
}

// loadErrorBuckets covers predictor load error of 0–200% in 5% steps;
// burst onsets under the Reactive predictor land in the high tail.
var loadErrorBuckets = telemetry.LinearBuckets(0, 5, 41)

// SpecFor captures an instance type's service rates from a cloud.Perf into
// an InstanceSpec for the autoscaler.
func SpecFor(it *cloud.Instance, perf cloud.Perf) (InstanceSpec, error) {
	b := perf.MaxBatch(it)
	if b <= 0 {
		return InstanceSpec{}, fmt.Errorf("cluster: instance %s has non-positive batch", it.Name)
	}
	bt := perf.BatchTime(it, b)
	if bt <= 0 {
		return InstanceSpec{}, fmt.Errorf("cluster: instance %s has non-positive batch time", it.Name)
	}
	return InstanceSpec{
		Name:           it.Name,
		PricePerSecond: it.PricePerSecond(),
		Batch:          b,
		BatchTime:      bt,
	}, nil
}
