package cluster

import (
	"testing"

	"ccperf/internal/cloud"
)

func spec() InstanceSpec {
	// 100 images per 10 s batch → 10 img/s, $0.9/h.
	return InstanceSpec{Name: "p2.xlarge", PricePerSecond: 0.9 / 3600, Batch: 100, BatchTime: 10}
}

func TestAutoscaleValidation(t *testing.T) {
	good := AutoscaleConfig{Instance: spec(), Min: 1, Max: 4, TargetUtil: 0.7, WindowSeconds: 3600}
	windows := []int64{1000, 2000}
	cases := []func(*AutoscaleConfig){
		func(c *AutoscaleConfig) { c.Min = 0 },
		func(c *AutoscaleConfig) { c.Max = 0 },
		func(c *AutoscaleConfig) { c.TargetUtil = 0 },
		func(c *AutoscaleConfig) { c.TargetUtil = 1.5 },
		func(c *AutoscaleConfig) { c.WindowSeconds = 0 },
		func(c *AutoscaleConfig) { c.Instance.Batch = 0 },
	}
	for i, mut := range cases {
		c := good
		mut(&c)
		if _, err := RunAutoscaled(c, windows, 100, 0.5); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := RunAutoscaled(good, nil, 100, 0.5); err == nil {
		t.Fatal("expected error for no windows")
	}
}

func TestAutoscaleSizesToLoad(t *testing.T) {
	// Rate 10 img/s per instance, target 0.7 → 7 img/s effective.
	// Window demand 36 000/h = 10/s → 2 instances; 108 000/h = 30/s → 5.
	cfg := AutoscaleConfig{
		Instance: spec(), Min: 1, Max: 8, TargetUtil: 0.7,
		WindowSeconds: 3600, Predictor: Oracle,
	}
	res, err := RunAutoscaled(cfg, []int64{3600, 36_000, 108_000, 3600}, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 5, 1}
	for w, n := range want {
		if res.Active[w] != n {
			t.Errorf("window %d: active = %d, want %d", w, res.Active[w], n)
		}
	}
	// Billing follows the active curve: (1+2+5+1)·3600 s of instance time.
	wantCost := 9.0 * 3600 * (0.9 / 3600)
	if diff := res.Cost - wantCost; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cost = %v, want %v", res.Cost, wantCost)
	}
}

func TestAutoscaleClampsToMax(t *testing.T) {
	cfg := AutoscaleConfig{
		Instance: spec(), Min: 1, Max: 2, TargetUtil: 0.7,
		WindowSeconds: 3600, Predictor: Oracle,
	}
	res, err := RunAutoscaled(cfg, []int64{500_000}, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Active[0] != 2 {
		t.Fatalf("active = %d, want clamped 2", res.Active[0])
	}
}

func TestReactiveLagsBurst(t *testing.T) {
	// A burst in window 1: the oracle scales with it; the reactive policy
	// sizes window 1 from quiet window 0 and eats queueing delay.
	windows := []int64{3600, 216_000, 3600}
	base := AutoscaleConfig{
		Instance: spec(), Min: 1, Max: 10, TargetUtil: 0.7,
		WindowSeconds: 3600,
	}
	oracleCfg := base
	oracleCfg.Predictor = Oracle
	reactCfg := base
	reactCfg.Predictor = Reactive

	oracle, err := RunAutoscaled(oracleCfg, windows, 2000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	react, err := RunAutoscaled(reactCfg, windows, 2000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if react.Active[1] >= oracle.Active[1] {
		t.Fatalf("reactive active[1]=%d should lag oracle %d", react.Active[1], oracle.Active[1])
	}
	if react.P95Response <= oracle.P95Response {
		t.Fatalf("reactive p95 %v should exceed oracle %v", react.P95Response, oracle.P95Response)
	}
	// The reactive policy spends the same instance-hours one window late
	// (scale-up reaches window 2 instead of the burst window), so its
	// cost cannot beat the oracle's.
	if react.Cost < oracle.Cost-1e-9 {
		t.Fatalf("reactive cheaper than oracle: %v vs %v", react.Cost, oracle.Cost)
	}
}

func TestBootDelayDelaysFreshInstances(t *testing.T) {
	// Window 1 scales 1 → 3; the two new instances serve only after the
	// boot delay, so early window-1 jobs see extra wait vs zero delay.
	windows := []int64{3600, 108_000}
	mk := func(delay float64) *AutoscaleResult {
		cfg := AutoscaleConfig{
			Instance: spec(), Min: 1, Max: 8, TargetUtil: 0.7,
			WindowSeconds: 3600, BootDelay: delay, Predictor: Oracle,
		}
		res, err := RunAutoscaled(cfg, windows, 2000, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := mk(0)
	slow := mk(600)
	if slow.P95Response < fast.P95Response {
		t.Fatalf("boot delay should not improve latency: %v vs %v", slow.P95Response, fast.P95Response)
	}
	if slow.MaxResponse <= fast.MaxResponse {
		t.Fatalf("600 s boot delay should stretch the tail: %v vs %v", slow.MaxResponse, fast.MaxResponse)
	}
}

func TestAutoscaleUtilizationBounded(t *testing.T) {
	cfg := AutoscaleConfig{
		Instance: spec(), Min: 1, Max: 8, TargetUtil: 0.7,
		WindowSeconds: 3600, Predictor: Oracle,
	}
	res, err := RunAutoscaled(cfg, []int64{36_000, 72_000, 18_000}, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	u := res.AverageUtilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	// Sized for 0.7 target, realized utilization stays at or below ~0.8
	// (batch-count rounding adds a little service time).
	if u > 0.85 {
		t.Fatalf("utilization %v exceeds sizing target region", u)
	}
}

func TestSpecFor(t *testing.T) {
	i, err := cloud.ByName("p2.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	s, err := SpecFor(i, stubPerf{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Batch != 100 || s.BatchTime != 10 || s.Name != "p2.xlarge" {
		t.Fatalf("spec = %+v", s)
	}
	if s.Rate() != 10 {
		t.Fatalf("rate = %v", s.Rate())
	}
}
