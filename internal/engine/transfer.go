package engine

// PROFET-style cross-instance transfer prediction (ROADMAP item 5).
//
// The measurement harness answers for the six calibrated catalog types
// only; every other instance type is invisible to planning. Following
// PROFET (Lee & Malik) and the roofline-feature approach validated for
// CNNs on heterogeneous edge devices, TransferPredictor fits per-device
// scaling factors from a few profiled instance types and predicts batch
// times on instance types it has never measured.
//
// The fit decomposes one GPU's batch time the same way the simulator's
// timing model does:
//
//	t(b) = α + (b/g)·w / u(⌈b/g⌉)
//
// where α is the per-batch launch overhead, w the saturated per-image
// time, g the GPU count and u the utilization ramp. Two jitter-free
// probes of each calibration instance at saturated batch sizes (b and 2b
// on one GPU, where u = 1) recover (α_i, w_i) exactly:
//
//	w_i = (t(2b) − t(b)) / b,   α_i = t(b) − b·w_i
//
// The roofline hypothesis is that per-device *rates* are linear in the
// device features: 1/w_i ≈ θ_c·TFLOPs_i + θ_m·MemBW_i (and likewise
// 1/α_i), fitted by least squares over the calibration set. GPU count
// enters through the per-GPU workload split b/g, exactly as in the
// simulator. The degree-of-pruning response and the utilization ramp are
// properties of the *model*, not the device, so predictions on unseen
// instances reuse the reference instance's measured shape: the ratio
// w_ref(d)/w_ref(0) scales work, α_ref(d)/α_ref(0) scales overhead, and
// u(n) is solved from a reference probe at per-GPU batch n.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/prune"
	"ccperf/internal/telemetry"
)

// RooflineFit is one fitted linear rate model: rate ≈ Compute·TFLOPs +
// Memory·MemBW. Memory can legitimately come out negative when the
// calibration set's faster device has the lower bandwidth (two-point
// interpolation), so Rate falls back to the compute-only fit whenever the
// two-feature prediction goes non-positive on an extrapolation target.
type RooflineFit struct {
	Compute     float64 // rate per TFLOP/s
	Memory      float64 // rate per GB/s
	ComputeOnly float64 // single-feature fallback: rate per TFLOP/s
	// MaxResidualPct is the worst |fitted−probed|/probed over the
	// calibration set, in percent — zero when the features interpolate
	// the probes exactly.
	MaxResidualPct float64
}

// Rate evaluates the fitted rate (1/seconds) for an instance's features.
func (f RooflineFit) Rate(inst *cloud.Instance) float64 {
	if r := f.Compute*inst.TFLOPs + f.Memory*inst.MemBWGBs; r > 0 {
		return r
	}
	return f.ComputeOnly * inst.TFLOPs
}

// fit solves the 2×2 normal equations for y ≈ θc·x1 + θm·x2 by least
// squares, with the compute-only fallback θ = Σx1y/Σx1² always computed.
// A singular system (all calibration devices sharing one feature vector)
// degrades to the compute-only model alone.
func fitRoofline(x1, x2, y []float64) RooflineFit {
	var s11, s12, s22, s1y, s2y, s1sq float64
	for i := range y {
		s11 += x1[i] * x1[i]
		s12 += x1[i] * x2[i]
		s22 += x2[i] * x2[i]
		s1y += x1[i] * y[i]
		s2y += x2[i] * y[i]
		s1sq += x1[i] * x1[i]
	}
	f := RooflineFit{}
	if s1sq > 0 {
		f.ComputeOnly = s1y / s1sq
	}
	det := s11*s22 - s12*s12
	// The determinant is ~(TFLOPs·GB/s)² when the set has two distinct
	// devices and collapses to rounding noise when it does not; the
	// relative test keeps the threshold scale-free.
	if det > 1e-9*s11*s22 {
		f.Compute = (s22*s1y - s12*s2y) / det
		f.Memory = (s11*s2y - s12*s1y) / det
	} else {
		f.Compute, f.Memory = f.ComputeOnly, 0
	}
	for i := range y {
		fitted := f.Compute*x1[i] + f.Memory*x2[i]
		if fitted <= 0 {
			fitted = f.ComputeOnly * x1[i]
		}
		if y[i] > 0 {
			if r := math.Abs(fitted-y[i]) / y[i] * 100; r > f.MaxResidualPct {
				f.MaxResidualPct = r
			}
		}
	}
	return f
}

// TransferModel is the fitted state of a TransferPredictor.
type TransferModel struct {
	Work       RooflineFit // saturated per-image rate, images/sec per GPU
	Overhead   RooflineFit // per-batch launch-overhead rate, 1/sec
	Calibrated []string    // instance types the fit probed
	RefName    string      // shape reference (degree response, utilization)
	SatPerGPU  int         // per-GPU saturating batch size
}

// TransferPredictor implements Predictor for instance types the inner
// predictor has never profiled. Calibration-set instances delegate to the
// inner predictor unchanged (they are measured, not predicted); any other
// instance type is answered from the fitted roofline model. The fit runs
// once in FitTransfer; afterwards the predictor is read-only apart from
// two memoized reference-shape tables, so it is deterministic and safe
// for concurrent use — the Predictor contract that lets a Cache memoize
// it with per-instance-type keys.
type TransferPredictor struct {
	inner      Predictor
	model      TransferModel
	calibrated map[string]bool
	ref        *cloud.Instance
	refWork    float64 // w_ref at degree 0
	refOver    float64 // α_ref at degree 0
	refPerf    cloud.Perf

	mu     sync.Mutex
	shapes map[string][2]float64 // degree label → (work ratio, overhead ratio)
	util   map[int]float64       // per-GPU batch → u(n)
}

var _ Predictor = (*TransferPredictor)(nil)

// FitTransfer probes each calibration instance through the inner
// predictor's jitter-free analytic Perf path and fits the roofline
// model. The first calibration instance doubles as the shape reference.
// At least two calibration instances are required; distinct device kinds
// among them are what give the two-feature fit its rank.
func FitTransfer(ctx context.Context, inner Predictor, calib []*cloud.Instance) (*TransferPredictor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var set []*cloud.Instance
	for _, it := range calib {
		if it == nil || seen[it.Name] {
			continue
		}
		seen[it.Name] = true
		set = append(set, it)
	}
	if len(set) < 2 {
		return nil, fmt.Errorf("engine: transfer fit needs ≥2 distinct calibration instances, got %d", len(set))
	}
	perf := inner.Perf(prune.Degree{}, 1)
	satB := perf.MaxBatch(set[0])
	if satB <= 0 {
		return nil, fmt.Errorf("engine: calibration instance %s has non-positive saturating batch", set[0].Name)
	}

	tp := &TransferPredictor{
		inner:      inner,
		calibrated: seen,
		ref:        set[0],
		refPerf:    perf,
		shapes:     map[string][2]float64{},
		util:       map[int]float64{},
	}
	names := make([]string, len(set))
	x1 := make([]float64, len(set))
	x2 := make([]float64, len(set))
	yw := make([]float64, len(set))
	yo := make([]float64, len(set))
	for i, it := range set {
		if it.TFLOPs <= 0 || it.MemBWGBs <= 0 {
			return nil, fmt.Errorf("engine: calibration instance %s has no roofline features", it.Name)
		}
		w, a, err := probe(perf, it, satB)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			tp.refWork, tp.refOver = w, a
		}
		names[i] = it.Name
		x1[i], x2[i] = it.TFLOPs, it.MemBWGBs
		yw[i], yo[i] = 1/w, 1/a
	}
	tp.model = TransferModel{
		Work:       fitRoofline(x1, x2, yw),
		Overhead:   fitRoofline(x1, x2, yo),
		Calibrated: names,
		RefName:    set[0].Name,
		SatPerGPU:  satB,
	}
	telemetry.Default.Counter("engine.transfer_fits").Inc()
	return tp, nil
}

// probe recovers (w, α) for one instance on one GPU from two saturated
// batch times: both probes sit past the knee, where u = 1 and the batch
// time is affine in b.
func probe(perf cloud.Perf, it *cloud.Instance, satB int) (w, a float64, err error) {
	t1 := perf.BatchTime(it, satB)
	t2 := perf.BatchTime(it, 2*satB)
	w = (t2 - t1) / float64(satB)
	a = t1 - float64(satB)*w
	if w <= 0 {
		return 0, 0, fmt.Errorf("engine: probe of %s gave non-positive per-image time %g", it.Name, w)
	}
	if a <= 0 {
		// A predictor with no launch overhead is still usable; pin a
		// vanishing α so the overhead rate stays finite.
		a = 1e-12
	}
	return w, a, nil
}

// Model returns the fitted transfer model.
func (tp *TransferPredictor) Model() TransferModel { return tp.model }

// IsCalibrated reports whether the named instance type is served by the
// inner predictor rather than the fitted model.
func (tp *TransferPredictor) IsCalibrated(name string) bool { return tp.calibrated[name] }

// shapeFor returns (work ratio, overhead ratio) of degree d relative to
// the unpruned reference — the model-side pruning response, probed once
// per degree on the reference instance and memoized.
func (tp *TransferPredictor) shapeFor(d prune.Degree) [2]float64 {
	if d.IsUnpruned() {
		return [2]float64{1, 1}
	}
	label := d.Label()
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if s, ok := tp.shapes[label]; ok {
		return s
	}
	perf := tp.inner.Perf(d, 1)
	w, a, err := probe(perf, tp.ref, tp.model.SatPerGPU)
	if err != nil {
		// A degree cannot make the reference unmeasurable when degree 0
		// was; keep the unpruned shape rather than fail the prediction.
		w, a = tp.refWork, tp.refOver
	}
	s := [2]float64{w / tp.refWork, a / tp.refOver}
	tp.shapes[label] = s
	return s
}

// utilization returns u(n) for a per-GPU batch of n images, solved from a
// reference probe at batch n: t(n) = α_ref + n·w_ref/u(n).
func (tp *TransferPredictor) utilization(n int) float64 {
	if n >= tp.model.SatPerGPU {
		return 1
	}
	if n <= 0 {
		n = 1
	}
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if u, ok := tp.util[n]; ok {
		return u
	}
	u := 1.0
	if t := tp.refPerf.BatchTime(tp.ref, n); t > tp.refOver {
		u = float64(n) * tp.refWork / (t - tp.refOver)
	}
	if u > 1 {
		u = 1
	}
	tp.util[n] = u
	return u
}

// BatchSeconds predicts one batch's time. Calibration-set instances are
// measured by the inner predictor; unseen instances are predicted from
// the fitted roofline rates and the reference shape.
func (tp *TransferPredictor) BatchSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus, b int) (float64, error) {
	if tp.calibrated[inst.Name] {
		return tp.inner.BatchSeconds(ctx, d, inst, gpus, b)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if gpus <= 0 {
		return 0, fmt.Errorf("engine: non-positive GPU count %d", gpus)
	}
	if b <= 0 {
		return 0, fmt.Errorf("engine: non-positive batch %d", b)
	}
	if inst.TFLOPs <= 0 {
		return 0, fmt.Errorf("engine: instance %s has no roofline features to transfer from", inst.Name)
	}
	shape := tp.shapeFor(d)
	w := shape[0] / tp.model.Work.Rate(inst)
	a := shape[1] / tp.model.Overhead.Rate(inst)
	perGPU := float64(b) / float64(gpus)
	u := tp.utilization(int(math.Ceil(perGPU)))
	telemetry.Default.Counter("engine.transfer_predictions").Inc()
	return a + perGPU*w/u, nil
}

// TotalSeconds predicts the time to infer w images on one instance at
// saturated batch size, mirroring the harness's ⌈w/b⌉·t(b) schedule.
func (tp *TransferPredictor) TotalSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus int, w int64) (float64, error) {
	if tp.calibrated[inst.Name] {
		return tp.inner.TotalSeconds(ctx, d, inst, gpus, w)
	}
	if gpus <= 0 {
		gpus = inst.GPUs
	}
	b := tp.model.SatPerGPU * gpus
	bt, err := tp.BatchSeconds(ctx, d, inst, gpus, b)
	if err != nil {
		return 0, err
	}
	return math.Ceil(float64(w)/float64(b)) * bt, nil
}

// Accuracy delegates to the inner predictor: accuracy is a property of
// the pruned model, not of the device it runs on.
func (tp *TransferPredictor) Accuracy(ctx context.Context, d prune.Degree) (accuracy.TopK, error) {
	return tp.inner.Accuracy(ctx, d)
}

// Perf adapts the transfer predictor to the analytical model's
// cloud.Perf, so the cluster simulator and the explore stack can plan
// fleets that mix calibrated and unseen instance types.
func (tp *TransferPredictor) Perf(d prune.Degree, gpus int) cloud.Perf {
	return &transferPerf{tp: tp, inner: tp.inner.Perf(d, gpus), d: d, gpus: gpus}
}

type transferPerf struct {
	tp    *TransferPredictor
	inner cloud.Perf
	d     prune.Degree
	gpus  int
}

func (p *transferPerf) g(it *cloud.Instance) int {
	if p.gpus > 0 && p.gpus <= it.GPUs {
		return p.gpus
	}
	return it.GPUs
}

// BatchTime implements cloud.Perf. Like the other Perf adapters it has no
// error channel; prediction failures (an instance with no features)
// propagate as panics, exactly as an unknown GPU kind does uncached.
func (p *transferPerf) BatchTime(it *cloud.Instance, b int) float64 {
	if p.tp.calibrated[it.Name] {
		return p.inner.BatchTime(it, b)
	}
	t, err := p.tp.BatchSeconds(context.Background(), p.d, it, p.g(it), b)
	if err != nil {
		panic(err)
	}
	return t
}

// MaxBatch implements cloud.Perf.
func (p *transferPerf) MaxBatch(it *cloud.Instance) int {
	return p.tp.model.SatPerGPU * p.g(it)
}

// LOORow is one held-out instance's row of a leave-one-out evaluation:
// the transfer model is fitted on every other type, and the held-out
// type's batch time is predicted and compared against the inner
// predictor's measurement — at full saturated batch on all GPUs, and at
// a single inference on one GPU (the overhead-dominated corner).
type LOORow struct {
	Instance string
	GPUs     int
	SatBatch int

	TruthSat float64 // measured BatchSeconds at (all GPUs, saturated batch)
	PredSat  float64
	TruthOne float64 // measured BatchSeconds at (1 GPU, batch 1)
	PredOne  float64

	ErrSatPct float64 // signed: (pred−truth)/truth·100
	ErrOnePct float64
}

// LeaveOneOut runs the held-out-error experiment over the given types:
// for each, fit on the rest and predict it. workers bounds the number of
// concurrent fits (≤1 = sequential). Row order follows types.
func LeaveOneOut(ctx context.Context, inner Predictor, types []*cloud.Instance, d prune.Degree, workers int) ([]LOORow, error) {
	if len(types) < 3 {
		return nil, fmt.Errorf("engine: leave-one-out needs ≥3 instance types, got %d", len(types))
	}
	if workers <= 1 {
		workers = 1
	}
	rows := make([]LOORow, len(types))
	errs := make([]error, len(types))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range types {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rows[i], errs[i] = looRow(ctx, inner, types, d, i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func looRow(ctx context.Context, inner Predictor, types []*cloud.Instance, d prune.Degree, hold int) (LOORow, error) {
	fitSet := make([]*cloud.Instance, 0, len(types)-1)
	for j, it := range types {
		if j != hold {
			fitSet = append(fitSet, it)
		}
	}
	tp, err := FitTransfer(ctx, inner, fitSet)
	if err != nil {
		return LOORow{}, err
	}
	held := types[hold]
	satB := tp.model.SatPerGPU * held.GPUs
	row := LOORow{Instance: held.Name, GPUs: held.GPUs, SatBatch: satB}
	if row.TruthSat, err = inner.BatchSeconds(ctx, d, held, held.GPUs, satB); err != nil {
		return LOORow{}, err
	}
	if row.PredSat, err = tp.BatchSeconds(ctx, d, held, held.GPUs, satB); err != nil {
		return LOORow{}, err
	}
	if row.TruthOne, err = inner.BatchSeconds(ctx, d, held, 1, 1); err != nil {
		return LOORow{}, err
	}
	if row.PredOne, err = tp.BatchSeconds(ctx, d, held, 1, 1); err != nil {
		return LOORow{}, err
	}
	row.ErrSatPct = (row.PredSat - row.TruthSat) / row.TruthSat * 100
	row.ErrOnePct = (row.PredOne - row.TruthOne) / row.TruthOne * 100
	return row, nil
}

// MaxAbsErrPct returns the largest |error| percent across rows, over both
// the saturated-batch and single-inference columns.
func MaxAbsErrPct(rows []LOORow) float64 {
	var m float64
	for _, r := range rows {
		m = math.Max(m, math.Max(math.Abs(r.ErrSatPct), math.Abs(r.ErrOnePct)))
	}
	return m
}
