package engine

import (
	"context"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"time"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/prune"
	"ccperf/internal/telemetry"
)

// shardCount spreads cache keys over independent locks so parallel
// exploration workers rarely contend. Keys differ in degree (the unit of
// worker parallelism), so the FNV spread keeps workers on disjoint shards.
const shardCount = 32

// Cache is a concurrency-safe memoizing Predictor. Each prediction family
// (batch time, total time, accuracy, analytic Perf batch time) has its own
// key namespace; a key is evaluated at most once, and concurrent requests
// for an in-flight key wait for the first evaluation instead of
// recomputing (singleflight-style deduplication). Failed evaluations are
// not cached: the error is returned to everyone waiting on the in-flight
// key, the key is evicted, and a later call retries.
//
// Telemetry (all under the engine.* prefix):
//
//	engine.cache_hits     counter — lookups served from a filled entry
//	engine.cache_misses   counter — lookups that evaluated the predictor
//	engine.dedup_waits    counter — lookups that waited on an in-flight fill
//	engine.cache_entries  gauge   — live entries across all namespaces
//	engine.fill_seconds   histogram — wall time of each underlying evaluation
//
// One Cache describes one model: keys do not include the model name, so
// wrap each Predictor in its own Cache.
type Cache struct {
	inner Predictor
	batch memo[float64]       // measured BatchSeconds (min over reps)
	total memo[float64]       // TotalSeconds at saturated batch
	acc   memo[accuracy.TopK] // per-degree accuracy
	perf  memo[float64]       // jitter-free analytic Perf.BatchTime
}

// NewCache wraps a Predictor in a memoizing cache.
func NewCache(inner Predictor) *Cache {
	return &Cache{inner: inner}
}

var _ Predictor = (*Cache)(nil)

// BatchSeconds memoizes the inner predictor's BatchSeconds.
func (c *Cache) BatchSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus, b int) (float64, error) {
	return c.batch.get(ctx, key(d.Label(), inst.Name, gpus, b), func() (float64, error) {
		return c.inner.BatchSeconds(ctx, d, inst, gpus, b)
	})
}

// TotalSeconds memoizes the inner predictor's TotalSeconds.
func (c *Cache) TotalSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus int, w int64) (float64, error) {
	k := key(d.Label(), inst.Name, gpus, int(w))
	return c.total.get(ctx, k, func() (float64, error) {
		return c.inner.TotalSeconds(ctx, d, inst, gpus, w)
	})
}

// Accuracy memoizes the inner predictor's Accuracy.
func (c *Cache) Accuracy(ctx context.Context, d prune.Degree) (accuracy.TopK, error) {
	return c.acc.get(ctx, d.Label(), func() (accuracy.TopK, error) {
		return c.inner.Accuracy(ctx, d)
	})
}

// Perf returns a cloud.Perf whose BatchTime is memoized in the cache, so
// every configuration sharing an instance type reuses one evaluation —
// the dominant win of a joint-space enumeration, where |P|·(2^|G|−1)
// model evaluations collapse onto |P|·|instance types| distinct keys.
// MaxBatch delegates directly (it is arithmetic, not a model evaluation).
func (c *Cache) Perf(d prune.Degree, gpus int) cloud.Perf {
	return &cachedPerf{c: c, inner: c.inner.Perf(d, gpus), dkey: d.Label(), gpus: gpus}
}

// Len returns the number of live cache entries across all namespaces.
func (c *Cache) Len() int {
	return c.batch.len() + c.total.len() + c.acc.len() + c.perf.len()
}

type cachedPerf struct {
	c     *Cache
	inner cloud.Perf
	dkey  string
	gpus  int

	// Per-adapter fast path: a subset enumeration asks for the same few
	// (instance type, batch) pairs hundreds of times back to back, so a
	// linear scan over a handful of entries beats rebuilding the shared
	// memo's string key on every call. The shared memo still backs the
	// first lookup, so adapters for the same degree reuse each other's
	// evaluations.
	mu    sync.Mutex
	local []perfEntry
}

type perfEntry struct {
	inst *cloud.Instance
	b    int
	v    float64
}

// BatchTime implements cloud.Perf. cloud.Perf has no error or context in
// its contract, so fills run under context.Background() and a fill that
// panics (e.g. an unknown GPU kind) propagates as it would uncached.
func (p *cachedPerf) BatchTime(it *cloud.Instance, b int) float64 {
	p.mu.Lock()
	for i := range p.local {
		if p.local[i].inst == it && p.local[i].b == b {
			v := p.local[i].v
			p.mu.Unlock()
			return v
		}
	}
	p.mu.Unlock()
	v, _ := p.c.perf.get(context.Background(), key(p.dkey, it.Name, p.gpus, b), func() (float64, error) {
		return p.inner.BatchTime(it, b), nil
	})
	p.mu.Lock()
	p.local = append(p.local, perfEntry{inst: it, b: b, v: v})
	p.mu.Unlock()
	return v
}

// MaxBatch implements cloud.Perf.
func (p *cachedPerf) MaxBatch(it *cloud.Instance) int { return p.inner.MaxBatch(it) }

// key renders a stable cache key from a degree label, instance name and
// integer parameters.
func key(degree, inst string, a, b int) string {
	var sb strings.Builder
	sb.Grow(len(degree) + len(inst) + 16)
	sb.WriteString(degree)
	sb.WriteByte('|')
	sb.WriteString(inst)
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(a))
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(b))
	return sb.String()
}

// entry is one memoized evaluation. done is closed when val/err are set.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// memo is a sharded map of singleflight entries. The zero value is ready
// to use.
type memo[V any] struct {
	shards [shardCount]struct {
		mu sync.Mutex
		m  map[string]*entry[V]
	}
}

func shardIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % shardCount)
}

// get returns the memoized value for key, evaluating fill at most once
// concurrently. A caller that finds the key in flight waits for the fill
// or its own context, whichever ends first; context cancellation while
// waiting does not disturb the fill.
func (m *memo[V]) get(ctx context.Context, k string, fill func() (V, error)) (V, error) {
	sh := &m.shards[shardIndex(k)]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]*entry[V])
	}
	if e, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
			telemetry.Default.Counter("engine.cache_hits").Inc()
			return e.val, e.err
		default:
		}
		telemetry.Default.Counter("engine.dedup_waits").Inc()
		select {
		case <-e.done:
			return e.val, e.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	e := &entry[V]{done: make(chan struct{})}
	sh.m[k] = e
	sh.mu.Unlock()

	reg := telemetry.Default
	reg.Counter("engine.cache_misses").Inc()
	start := time.Now()
	e.val, e.err = fill()
	reg.Histogram("engine.fill_seconds", nil).Observe(time.Since(start).Seconds())
	if e.err != nil {
		// Do not cache failures: evict so a later call retries. Current
		// waiters still observe this attempt's error through the entry.
		sh.mu.Lock()
		delete(sh.m, k)
		sh.mu.Unlock()
	} else {
		reg.Gauge("engine.cache_entries").Add(1)
	}
	close(e.done)
	return e.val, e.err
}

// len counts live entries across shards.
func (m *memo[V]) len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
