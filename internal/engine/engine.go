// Package engine unifies the system's prediction paths behind one
// interface. The paper's analytical models (Section 3.4, Equations 1–4)
// exist to make one measurement serve many configurations: a single
// per-batch time t_{b,a} answers for every multiset configuration that
// includes the instance type, and a single per-degree accuracy answers for
// every resource configuration hosting that degree. Predictor is that
// contract — "given a degree of pruning and a resource, what does one
// batch cost, what does the workload cost, how accurate is the model" —
// and Cache is the memoization layer that makes predictions cheap enough
// to reuse across the joint-space exploration (internal/explore), the
// fleet simulator (internal/cluster) and the serving ladder
// (internal/serving).
//
// The canonical implementation is *measure.Harness (the run-3-take-min
// measurement harness over the calibrated GPU simulator); wrap it in
// NewCache and every consumer shares one set of evaluations. Memoization
// is sound because the substrate is deterministic: the simulator's
// virtualization jitter is a pure function of the run identity
// (gpusim.JitteredBatchTime), so re-evaluating a key can never produce a
// different value.
package engine

import (
	"context"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/prune"
)

// AccuracySource predicts inference accuracy as a function of the degree
// of pruning — the slice of Predictor the serving ladder's calibration
// needs.
type AccuracySource interface {
	// Accuracy returns the Top-1/Top-5 accuracy of the model pruned by d.
	Accuracy(ctx context.Context, d prune.Degree) (accuracy.TopK, error)
}

// Predictor answers the three questions every planning, simulation and
// serving layer asks, for one model. Implementations must be
// deterministic — the same arguments always yield the same value — and
// safe for concurrent use; both properties are what allow Cache to
// memoize and deduplicate evaluations.
type Predictor interface {
	AccuracySource

	// BatchSeconds predicts the time of one batch of b images on gpus
	// GPUs of the instance (0 < gpus ≤ inst.GPUs), at degree d — the
	// measured t_{b,a} of Section 3.3.
	BatchSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus, b int) (float64, error)

	// TotalSeconds predicts the time to infer w images on one instance
	// using gpus GPUs (0 ⇒ all), at saturated batch size.
	TotalSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus int, w int64) (float64, error)

	// Perf adapts the predictor to the analytical model's cloud.Perf
	// (Equations 1–4) at degree d, utilizing gpus GPUs per instance
	// (0 ⇒ all).
	Perf(d prune.Degree, gpus int) cloud.Perf
}
