package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/prune"
	"ccperf/internal/telemetry"
)

// fakePredictor counts evaluations and can block or fail on demand.
type fakePredictor struct {
	batchCalls atomic.Int64
	totalCalls atomic.Int64
	accCalls   atomic.Int64
	perfCalls  atomic.Int64

	block chan struct{} // if non-nil, BatchSeconds waits for it
	fail  atomic.Bool   // if set, evaluations error
}

func (f *fakePredictor) BatchSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus, b int) (float64, error) {
	f.batchCalls.Add(1)
	if f.block != nil {
		<-f.block
	}
	if f.fail.Load() {
		return 0, errors.New("boom")
	}
	return float64(gpus*b) + d.Ratio("conv1"), nil
}

func (f *fakePredictor) TotalSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus int, w int64) (float64, error) {
	f.totalCalls.Add(1)
	if f.fail.Load() {
		return 0, errors.New("boom")
	}
	return float64(w), nil
}

func (f *fakePredictor) Accuracy(ctx context.Context, d prune.Degree) (accuracy.TopK, error) {
	f.accCalls.Add(1)
	if f.fail.Load() {
		return accuracy.TopK{}, errors.New("boom")
	}
	return accuracy.TopK{Top1: 0.56, Top5: 0.8}, nil
}

func (f *fakePredictor) Perf(d prune.Degree, gpus int) cloud.Perf {
	return fakePerf{f: f}
}

type fakePerf struct{ f *fakePredictor }

func (p fakePerf) BatchTime(it *cloud.Instance, b int) float64 {
	p.f.perfCalls.Add(1)
	return float64(b) * 0.001
}

func (p fakePerf) MaxBatch(it *cloud.Instance) int { return 300 * it.GPUs }

func p2(t *testing.T) *cloud.Instance {
	t.Helper()
	i, err := cloud.ByName("p2.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func TestCacheMemoizesEachNamespace(t *testing.T) {
	telemetry.Reset()
	defer telemetry.Reset()
	f := &fakePredictor{}
	c := NewCache(f)
	ctx := context.Background()
	d := prune.NewDegree("conv1", 0.5)
	inst := p2(t)

	for i := 0; i < 3; i++ {
		if _, err := c.BatchSeconds(ctx, d, inst, 1, 300); err != nil {
			t.Fatal(err)
		}
		if _, err := c.TotalSeconds(ctx, d, inst, 0, 50_000); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Accuracy(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.batchCalls.Load(); got != 1 {
		t.Fatalf("batch evaluations = %d, want 1", got)
	}
	if got := f.totalCalls.Load(); got != 1 {
		t.Fatalf("total evaluations = %d, want 1", got)
	}
	if got := f.accCalls.Load(); got != 1 {
		t.Fatalf("accuracy evaluations = %d, want 1", got)
	}
	if got := telemetry.Default.Counter("engine.cache_misses").Value(); got != 3 {
		t.Fatalf("cache_misses = %d, want 3", got)
	}
	if got := telemetry.Default.Counter("engine.cache_hits").Value(); got != 6 {
		t.Fatalf("cache_hits = %d, want 6", got)
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := telemetry.Default.Gauge("engine.cache_entries").Value(); got != 3 {
		t.Fatalf("cache_entries gauge = %v, want 3", got)
	}
	if h := telemetry.Default.Histogram("engine.fill_seconds", nil); h.Count() != 3 {
		t.Fatalf("fill_seconds count = %d, want 3", h.Count())
	}
}

func TestCacheDistinguishesKeys(t *testing.T) {
	f := &fakePredictor{}
	c := NewCache(f)
	ctx := context.Background()
	inst := p2(t)
	d1 := prune.NewDegree("conv1", 0.3)
	d2 := prune.NewDegree("conv1", 0.7)

	a, _ := c.BatchSeconds(ctx, d1, inst, 1, 300)
	b, _ := c.BatchSeconds(ctx, d2, inst, 1, 300)
	if a == b {
		t.Fatalf("distinct degrees collided: %v == %v", a, b)
	}
	c.BatchSeconds(ctx, d1, inst, 2, 300) // distinct gpus
	c.BatchSeconds(ctx, d1, inst, 1, 600) // distinct batch
	if got := f.batchCalls.Load(); got != 4 {
		t.Fatalf("batch evaluations = %d, want 4", got)
	}
}

func TestCacheDedupsInFlight(t *testing.T) {
	telemetry.Reset()
	defer telemetry.Reset()
	f := &fakePredictor{block: make(chan struct{})}
	c := NewCache(f)
	ctx := context.Background()
	d := prune.Degree{}
	inst := p2(t)

	const workers = 8
	var wg sync.WaitGroup
	results := make([]float64, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.BatchSeconds(ctx, d, inst, 1, 300)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let the waiters pile up on the in-flight entry, then release.
	for f.batchCalls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(f.block)
	wg.Wait()

	if got := f.batchCalls.Load(); got != 1 {
		t.Fatalf("in-flight dedup failed: %d evaluations, want 1", got)
	}
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d got %v, want %v", i, results[i], results[0])
		}
	}
	if got := telemetry.Default.Counter("engine.dedup_waits").Value(); got < 1 {
		t.Fatalf("dedup_waits = %d, want ≥ 1", got)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	f := &fakePredictor{}
	f.fail.Store(true)
	c := NewCache(f)
	ctx := context.Background()
	d := prune.Degree{}
	inst := p2(t)

	if _, err := c.BatchSeconds(ctx, d, inst, 1, 300); err == nil {
		t.Fatal("expected error")
	}
	f.fail.Store(false)
	v, err := c.BatchSeconds(ctx, d, inst, 1, 300)
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if v != 300 {
		t.Fatalf("retried value = %v, want 300", v)
	}
	if got := f.batchCalls.Load(); got != 2 {
		t.Fatalf("evaluations = %d, want 2 (error must not be cached)", got)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (failed entry evicted)", got)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	f := &fakePredictor{block: make(chan struct{})}
	defer close(f.block)
	c := NewCache(f)
	d := prune.Degree{}
	inst := p2(t)

	go c.BatchSeconds(context.Background(), d, inst, 1, 300)
	for f.batchCalls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.BatchSeconds(ctx, d, inst, 1, 300); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
}

func TestCachedPerfMemoizesBatchTime(t *testing.T) {
	f := &fakePredictor{}
	c := NewCache(f)
	inst := p2(t)
	perf := c.Perf(prune.NewDegree("conv2", 0.5), 0)

	a := perf.BatchTime(inst, 300)
	b := perf.BatchTime(inst, 300)
	if a != b {
		t.Fatalf("cached BatchTime differs: %v vs %v", a, b)
	}
	if got := f.perfCalls.Load(); got != 1 {
		t.Fatalf("perf evaluations = %d, want 1", got)
	}
	// A second adapter for the same degree shares the cache.
	perf2 := c.Perf(prune.NewDegree("conv2", 0.5), 0)
	perf2.BatchTime(inst, 300)
	if got := f.perfCalls.Load(); got != 1 {
		t.Fatalf("perf evaluations after second adapter = %d, want 1", got)
	}
	if got := perf.MaxBatch(inst); got != 300*inst.GPUs {
		t.Fatalf("MaxBatch = %d", got)
	}
}
