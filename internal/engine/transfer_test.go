package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/prune"
)

// fakeRoofline is a synthetic Predictor whose ground truth lies exactly
// in the transfer model's family: per-device rates linear in the roofline
// features, a shared utilization ramp, and a device-independent pruning
// response. (engine cannot import internal/measure — measure imports
// engine — so the tests carry their own substrate.)
type fakeRoofline struct {
	jitter float64 // relative amplitude on BatchSeconds; Perf stays clean
}

const (
	fakeSatB   = 300
	fakeSatExp = 0.12
)

func fakeRates(inst *cloud.Instance) (w, a float64) {
	// Hidden truth: work rate 30/TFLOP + 0.05/GB/s, overhead rate
	// 400/TFLOP + 2/GB/s. Both strictly positive on the catalog.
	return 1 / (30*inst.TFLOPs + 0.05*inst.MemBWGBs), 1 / (400*inst.TFLOPs + 2*inst.MemBWGBs)
}

func fakeU(n int) float64 {
	if n >= fakeSatB {
		return 1
	}
	return math.Pow(float64(n)/fakeSatB, fakeSatExp)
}

// fakeResp is the device-independent pruning response: mean prune ratio
// shrinks work by up to 60% and overhead by up to 20%.
func fakeResp(d prune.Degree) (workR, overR float64) {
	if len(d.Ratios) == 0 {
		return 1, 1
	}
	var s float64
	for _, r := range d.Ratios {
		s += r
	}
	mean := s / float64(len(d.Ratios))
	return 1 - 0.6*mean, 1 - 0.2*mean
}

func (f fakeRoofline) batch(d prune.Degree, inst *cloud.Instance, gpus, b int, jittered bool) float64 {
	w, a := fakeRates(inst)
	wr, or := fakeResp(d)
	perGPU := float64(b) / float64(gpus)
	t := a*or + perGPU*w*wr/fakeU(int(math.Ceil(perGPU)))
	if jittered && f.jitter > 0 {
		// Deterministic pseudo-jitter from the call identity.
		h := uint64(b)*2654435761 ^ uint64(gpus)<<17 ^ uint64(len(inst.Name))<<33
		for i := 0; i < len(inst.Name); i++ {
			h = h*1099511628211 ^ uint64(inst.Name[i])
		}
		t *= 1 + f.jitter*float64(h>>40)/float64(1<<24)
	}
	return t
}

func (f fakeRoofline) BatchSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus, b int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if gpus <= 0 || b <= 0 {
		return 0, fmt.Errorf("fake: bad args gpus=%d b=%d", gpus, b)
	}
	return f.batch(d, inst, gpus, b, true), nil
}

func (f fakeRoofline) TotalSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus int, w int64) (float64, error) {
	if gpus <= 0 {
		gpus = inst.GPUs
	}
	b := fakeSatB * gpus
	bt, err := f.BatchSeconds(ctx, d, inst, gpus, b)
	if err != nil {
		return 0, err
	}
	return math.Ceil(float64(w)/float64(b)) * bt, nil
}

func (f fakeRoofline) Accuracy(ctx context.Context, d prune.Degree) (accuracy.TopK, error) {
	return accuracy.TopK{Top1: 0.5, Top5: 0.7}, nil
}

func (f fakeRoofline) Perf(d prune.Degree, gpus int) cloud.Perf {
	return rooflinePerf{f: f, d: d, gpus: gpus}
}

type rooflinePerf struct {
	f    fakeRoofline
	d    prune.Degree
	gpus int
}

func (p rooflinePerf) g(it *cloud.Instance) int {
	if p.gpus > 0 && p.gpus <= it.GPUs {
		return p.gpus
	}
	return it.GPUs
}

func (p rooflinePerf) BatchTime(it *cloud.Instance, b int) float64 {
	return p.f.batch(p.d, it, p.g(it), b, false)
}

func (p rooflinePerf) MaxBatch(it *cloud.Instance) int { return fakeSatB * p.g(it) }

var _ Predictor = fakeRoofline{}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	return context.Background()
}

func TestTransferFitRecoversExactRoofline(t *testing.T) {
	cat := cloud.Catalog()
	held := cat[0]
	tp, err := FitTransfer(ctxT(t), fakeRoofline{}, cat[1:])
	if err != nil {
		t.Fatal(err)
	}
	m := tp.Model()
	if m.SatPerGPU != fakeSatB {
		t.Fatalf("SatPerGPU = %d, want %d", m.SatPerGPU, fakeSatB)
	}
	if m.Work.MaxResidualPct > 1e-6 || m.Overhead.MaxResidualPct > 1e-6 {
		t.Fatalf("residuals should vanish on in-family truth: %v / %v", m.Work.MaxResidualPct, m.Overhead.MaxResidualPct)
	}
	// Held-out catalog type and an extrapolation target both predicted
	// exactly (the fake's truth is linear in the same features).
	for _, inst := range []*cloud.Instance{held, cloud.TransferTargets()[0]} {
		for _, c := range []struct{ gpus, b int }{{1, 1}, {1, 50}, {inst.GPUs, fakeSatB * inst.GPUs}} {
			want := fakeRoofline{}.batch(prune.Degree{}, inst, c.gpus, c.b, false)
			got, err := tp.BatchSeconds(ctxT(t), prune.Degree{}, inst, c.gpus, c.b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want)/want > 1e-9 {
				t.Fatalf("%s gpus=%d b=%d: got %.12g want %.12g", inst.Name, c.gpus, c.b, got, want)
			}
		}
	}
}

func TestTransferDegreeShapeReuse(t *testing.T) {
	cat := cloud.Catalog()
	tp, err := FitTransfer(ctxT(t), fakeRoofline{}, cat[1:])
	if err != nil {
		t.Fatal(err)
	}
	d := prune.NewDegree("conv1", 0.3, "conv2", 0.5)
	inst := cloud.TransferTargets()[1]
	want := fakeRoofline{}.batch(d, inst, 2, 77, false)
	got, err := tp.BatchSeconds(ctxT(t), d, inst, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("pruned prediction: got %.12g want %.12g", got, want)
	}

	wTot := fakeRoofline{}.TotalSeconds
	want2, _ := wTot(ctxT(t), d, inst, 0, 1_000_000)
	got2, err := tp.TotalSeconds(ctxT(t), d, inst, 0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// TotalSeconds truth is jittered (mirrors the harness); allow the
	// fake's jitter amplitude.
	if math.Abs(got2-want2)/want2 > 0.05 {
		t.Fatalf("TotalSeconds: got %.6g want %.6g", got2, want2)
	}
}

func TestTransferCalibratedInstancesDelegate(t *testing.T) {
	cat := cloud.Catalog()
	f := fakeRoofline{jitter: 0.03}
	tp, err := FitTransfer(ctxT(t), f, cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range cat {
		if !tp.IsCalibrated(inst.Name) {
			t.Fatalf("%s should be calibrated", inst.Name)
		}
		want, _ := f.BatchSeconds(ctxT(t), prune.Degree{}, inst, 1, 64)
		got, err := tp.BatchSeconds(ctxT(t), prune.Degree{}, inst, 1, 64)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: delegation changed the measurement: %g != %g", inst.Name, got, want)
		}
	}
	if tp.IsCalibrated("p3.2xlarge") {
		t.Fatal("p3.2xlarge must not be calibrated")
	}
}

func TestLeaveOneOutSmallHeldOutError(t *testing.T) {
	rows, err := LeaveOneOut(ctxT(t), fakeRoofline{jitter: 0.03}, cloud.Catalog(), prune.Degree{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i, r := range rows {
		if r.Instance != cloud.Catalog()[i].Name {
			t.Fatalf("row %d order: %s", i, r.Instance)
		}
		if r.TruthSat <= 0 || r.PredSat <= 0 || r.TruthOne <= 0 || r.PredOne <= 0 {
			t.Fatalf("row %+v has non-positive times", r)
		}
	}
	// The fit probes are jitter-free while the measured truth carries up
	// to 3% jitter; held-out error must stay within that envelope.
	if m := MaxAbsErrPct(rows); m > 5 {
		t.Fatalf("max held-out error %.2f%% exceeds the jitter envelope", m)
	}
}

func TestTransferFitErrors(t *testing.T) {
	cat := cloud.Catalog()
	if _, err := FitTransfer(ctxT(t), fakeRoofline{}, cat[:1]); err == nil {
		t.Fatal("one calibration instance must be rejected")
	}
	if _, err := FitTransfer(ctxT(t), fakeRoofline{}, []*cloud.Instance{cat[0], cat[0]}); err == nil {
		t.Fatal("duplicate-only calibration set must be rejected")
	}
	bare := &cloud.Instance{Name: "bare", GPUs: 1}
	if _, err := FitTransfer(ctxT(t), fakeRoofline{}, []*cloud.Instance{cat[0], bare}); err == nil {
		t.Fatal("featureless calibration instance must be rejected")
	}
	tp, err := FitTransfer(ctxT(t), fakeRoofline{}, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.BatchSeconds(ctxT(t), prune.Degree{}, bare, 1, 1); err == nil {
		t.Fatal("prediction for a featureless instance must error")
	}
}

func TestTransferSingleDeviceFallsBackToComputeOnly(t *testing.T) {
	// All-K80 calibration set: the two-feature system is singular, the
	// compute-only fit takes over, and K80-family predictions stay exact.
	cat := cloud.Catalog()
	tp, err := FitTransfer(ctxT(t), fakeRoofline{}, cat[:3])
	if err != nil {
		t.Fatal(err)
	}
	m := tp.Model()
	if m.Work.Memory != 0 {
		t.Fatalf("singular fit should zero the memory term, got %v", m.Work.Memory)
	}
	want := fakeRoofline{}.batch(prune.Degree{}, cat[0], 1, fakeSatB, false)
	// cat[0] is calibrated; check via a synthetic same-features type.
	clone := *cat[0]
	clone.Name = "p2.xlarge-clone"
	got, err := tp.BatchSeconds(ctxT(t), prune.Degree{}, &clone, 1, fakeSatB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("same-device prediction: got %.12g want %.12g", got, want)
	}
}

// TestTransferCacheKeysAcrossInstanceTypes pins the memoization contract:
// wrapped in a Cache, predictions for unseen instance types fill distinct
// keys and never collide with calibrated ones.
func TestTransferCacheKeysAcrossInstanceTypes(t *testing.T) {
	cat := cloud.Catalog()
	tp, err := FitTransfer(ctxT(t), fakeRoofline{}, cat)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(tp)
	d := prune.Degree{}
	calV, err := c.BatchSeconds(ctxT(t), d, cat[1], 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	p3 := cloud.TransferTargets()[0]
	unseenV, err := c.BatchSeconds(ctxT(t), d, p3, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if calV == unseenV {
		t.Fatal("calibrated and unseen instances returned one value — key collision?")
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("cache entries = %d, want 2 (one per instance type)", n)
	}
	again, err := c.BatchSeconds(ctxT(t), d, p3, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if again != unseenV {
		t.Fatalf("memoized value changed: %g != %g", again, unseenV)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("repeat lookup grew the cache to %d entries", n)
	}
	// A second unseen type fills its own key.
	if _, err := c.BatchSeconds(ctxT(t), d, cloud.TransferTargets()[1], 1, 10); err != nil {
		t.Fatal(err)
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("cache entries = %d, want 3", n)
	}
}

// TestTransferConcurrentDeterminism hammers one predictor from many
// goroutines (run under -race by check.sh) and verifies every call
// returns the value a serial pass computed.
func TestTransferConcurrentDeterminism(t *testing.T) {
	tp, err := FitTransfer(ctxT(t), fakeRoofline{jitter: 0.03}, cloud.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	type q struct {
		inst *cloud.Instance
		d    prune.Degree
		gpus int
		b    int
	}
	var queries []q
	degrees := []prune.Degree{{}, prune.NewDegree("conv1", 0.3), prune.NewDegree("conv1", 0.3, "conv2", 0.5)}
	for _, inst := range cloud.AllTypes() {
		for _, d := range degrees {
			queries = append(queries, q{inst, d, 1, 1}, q{inst, d, 1, 120}, q{inst, d, inst.GPUs, fakeSatB * inst.GPUs})
		}
	}
	want := make([]float64, len(queries))
	for i, qu := range queries {
		if want[i], err = tp.BatchSeconds(ctxT(t), qu.d, qu.inst, qu.gpus, qu.b); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range queries {
				qu := queries[(i+g)%len(queries)]
				got, err := tp.BatchSeconds(context.Background(), qu.d, qu.inst, qu.gpus, qu.b)
				if err != nil {
					errc <- err
					return
				}
				if got != want[(i+g)%len(queries)] {
					errc <- fmt.Errorf("nondeterministic: %s got %g want %g", qu.inst.Name, got, want[(i+g)%len(queries)])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestTransferPerfAdapter(t *testing.T) {
	tp, err := FitTransfer(ctxT(t), fakeRoofline{}, cloud.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	d := prune.NewDegree("conv1", 0.2)
	perf := tp.Perf(d, 0)
	p3 := cloud.TransferTargets()[2] // p3.16xlarge, 8 GPUs
	if got := perf.MaxBatch(p3); got != fakeSatB*8 {
		t.Fatalf("MaxBatch = %d, want %d", got, fakeSatB*8)
	}
	want, err := tp.BatchSeconds(ctxT(t), d, p3, p3.GPUs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if got := perf.BatchTime(p3, 1024); got != want {
		t.Fatalf("BatchTime = %g, want %g", got, want)
	}
}

func BenchmarkTransferFit(b *testing.B) {
	ctx := context.Background()
	cat := cloud.Catalog()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FitTransfer(ctx, fakeRoofline{}, cat); err != nil {
			b.Fatal(err)
		}
	}
}
